/**
 * @file
 * The switched fabric connecting RNIC ports.
 *
 * Ports register under a Local IDentifier (LID). send() schedules delivery
 * after the link latency plus serialization delay; packets addressed to an
 * unknown LID vanish silently, exactly the failure mode the paper exploits
 * to measure transport timeouts (Sec. IV-B). Capture taps observe every
 * packet at egress (like ibdump on the sending HCA port) including packets
 * that are subsequently dropped.
 */

#ifndef IBSIM_NET_FABRIC_HH
#define IBSIM_NET_FABRIC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/fault_hook.hh"
#include "net/loss.hh"
#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "simcore/cross_channel.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "simcore/sharded_kernel.hh"

namespace ibsim {
namespace net {

/**
 * Administrative state of a port (IBA PortState, reduced to what the
 * simulation distinguishes). `Flapping` is an annotation meaning "this
 * port's links carry an active flap schedule"; it gates nothing — only
 * `Down` stops traffic.
 */
enum class PortState : std::uint8_t
{
    Up,
    Down,
    Flapping,
};

/**
 * A port/path event raised by the fabric toward the attached RNIC — the
 * simulation's equivalent of an IBV_EVENT_PORT_ERR/PORT_ACTIVE async
 * event. Path events are per-peer (one mesh link went down/up); port
 * events cover the whole port.
 */
struct PortEvent
{
    enum class Type : std::uint8_t
    {
        PortUp,
        PortDown,
        PathUp,    ///< link to `peerLid` recovered
        PathDown,  ///< link to `peerLid` cut
    };

    Type type = Type::PortDown;
    std::uint16_t lid = 0;      ///< the port the event is delivered to
    std::uint16_t peerLid = 0;  ///< far end of the link (path events)

    /**
     * True when, at event time, the subnet still has another up link out
     * of this port — i.e. an SM-style reroute around the cut is possible.
     */
    bool redundantPath = false;
};

/**
 * Receiver interface implemented by RNICs.
 */
class PortHandler
{
  public:
    virtual ~PortHandler() = default;

    /** A packet has arrived at this port. */
    virtual void receive(const Packet& pkt) = 0;

    /** An async port/path event for this port (default: ignored). */
    virtual void portEvent(const PortEvent& ev) { (void)ev; }
};

/** Static link parameters of the fabric. */
struct LinkConfig
{
    /** One-way propagation + switching latency. */
    Time latency = Time::us(0.9);

    /** Link bandwidth in bytes per second (56 Gb/s FDR by default). */
    double bandwidthBytesPerSec = 56e9 / 8.0;

    /** Per-packet host/NIC processing overhead added to delivery time. */
    Time perPacketOverhead = Time::ns(50);
};

/**
 * Observer invoked for every packet handed to the fabric (before loss).
 */
using CaptureTap = std::function<void(const Packet&, bool dropped)>;

/**
 * The fabric: LID-addressed delivery with latency, serialization and loss.
 *
 * Two execution modes share the routing tables:
 *
 *  - Single-queue (default): every delivery is scheduled on the one
 *    EventQueue passed at construction — the historical path, untouched
 *    by island mode and pinned by the repo's traceHash goldens.
 *
 *  - Island mode (enableSharding()): each LID belongs to an island of a
 *    ShardedKernel and the fabric keeps one Lane per island — its own
 *    wire-id space, RNG fork, PacketPool, fault hook and outbound
 *    channels. Same-island packets take the inline path on the island's
 *    queue; cross-island packets become Parcels in per-(src, dst)
 *    CrossChannels keyed by their *effect* time (earliest arrival plus
 *    the per-packet overhead — the first event they can schedule). The
 *    destination island drains every channel up to its window horizon
 *    before running the window, merging parcels in (arrival, wire-id)
 *    order and applying the destination port's ingress serialization
 *    max-chain; the kernel's pairwise channel clocks guarantee every
 *    parcel at or below the horizon is already visible (DESIGN.md
 *    §12.b), so there is no global barrier anywhere on the path. Both
 *    the egress and ingress busy-times of a port are only ever touched
 *    by that port's island. The fabric forwards each connection's route
 *    to the kernel's edge graph (declareRoute(); UD-capable islands
 *    declare dense edges), which is what lets distant islands run
 *    windows without synchronizing. Loss models and fault hooks shared
 *    across lanes would race at jobs > 1 — use setIslandFaultHook()
 *    (chaos::ChaosEngine::installSharded() does) and stateless loss
 *    models only.
 */
class Fabric : public ShardedKernel::BarrierAgent
{
  public:
    Fabric(EventQueue& events, Rng& rng, LinkConfig config = {});

    /** Register @p handler under @p lid. LIDs must be unique. */
    void attach(std::uint16_t lid, PortHandler& handler);

    /** Remove a port (packets to it then vanish). */
    void detach(std::uint16_t lid);

    /**
     * Send a packet. Ownership of the contents transfers; the fabric stamps
     * wireId/sentAt. Returns the wire id (0 if the packet was dropped by a
     * loss model or addressed to an unknown LID — it still got a wire id
     * for capture purposes; 0 is never used).
     */
    std::uint64_t send(Packet pkt);

    /**
     * Install a loss model (replaces the previous one).
     *
     * Compatibility shim: the loss model is stage zero of the fault
     * pipeline — it is consulted before the FaultHook, with the fabric's
     * RNG, exactly as it was before the chaos engine existed, so
     * MatchOnceLoss / BernoulliLoss users keep their packet-for-packet
     * behaviour. New fault classes belong in a chaos::FaultInjector stage
     * (chaos::LossModelStage adapts a LossModel into one).
     */
    void setLossModel(std::unique_ptr<LossModel> model);

    /**
     * Install the fault-injection hook (non-owning; nullptr uninstalls).
     * Consulted after the legacy loss stage for every surviving packet.
     */
    void setFaultHook(FaultHook* hook) { hook_ = hook; }

    /** Add a capture tap observing all traffic. */
    void addTap(CaptureTap tap);

    /** @{ Port events and link state (see DESIGN.md §13).
     *
     * Link-down windows gate traffic at *egress*: a packet sent while
     * the (src, dst) link is down is dropped at the sending port (taps
     * see it with dropped = true), unless the sending QP was rerouted
     * (Packet::rerouted), in which case it passes and is charged one
     * extra hop of latency for the detour. Packets already past egress
     * when a link cuts still arrive — cutting a link does not vaporize
     * in-flight photons. In island mode every island keeps its own
     * replica of link state (setLaneLinkState()), toggled by its own
     * scheduled events, so egress decisions never read foreign-island
     * state. Port `Down` state additionally gates ingress at the
     * destination port (island-owned there too).
     */

    /** Administrative port state (setup/test API; `Down` gates traffic). */
    void setPortState(std::uint16_t lid, PortState state);

    PortState
    portState(std::uint16_t lid) const
    {
        return lid < ports_.size() ? ports_[lid].state : PortState::Up;
    }

    /** Deliver an async event to the handler attached at @p lid. */
    void raisePortEvent(std::uint16_t lid, const PortEvent& ev);

    /** Single-queue mode: toggle the {a, b} link. */
    void setLinkState(std::uint16_t a, std::uint16_t b, bool up);

    /** Island mode: toggle @p island's replica of the {a, b} link. */
    void setLaneLinkState(std::size_t island, std::uint16_t a,
                          std::uint16_t b, bool up);

    /** Whether @p island's view of the {a, b} link is down. */
    bool laneLinkDown(std::size_t island, std::uint16_t a,
                      std::uint16_t b) const;

    /** Packets dropped by port/link-down gates (subset of totalDropped). */
    std::uint64_t totalPortEventDrops() const;

    /** @} */

    /**
     * Whether a port is attached under @p lid — the dense PortRecord
     * table bounds check. Egress paths that pre-address packets (UD
     * datagrams) consult this to account would-be silent drops.
     */
    bool
    attached(std::uint16_t lid) const
    {
        return lid < ports_.size() && ports_[lid].handler != nullptr;
    }

    /** Total packets handed to send(). */
    std::uint64_t totalSent() const;

    /** Total packets actually delivered. */
    std::uint64_t totalDelivered() const;

    /** Total packets dropped (loss model, fault hook or unknown LID). */
    std::uint64_t totalDropped() const;

    /** Extra packets materialized by the fault hook (dups, forged NAKs). */
    std::uint64_t totalInjected() const;

    const LinkConfig& config() const { return config_; }

    EventQueue& events() { return events_; }

    /** In-flight packet pool usage (capacity planning / tests). */
    const PacketPool& packetPool() const { return pool_; }

    /** @{ Island mode (see the class comment). */

    /**
     * Switch into island mode over @p kernel. Call before any lane or
     * LID exists; registers the fabric as a BarrierAgent.
     */
    void enableSharding(ShardedKernel& kernel);

    bool sharded() const { return kernel_ != nullptr; }

    ShardedKernel* shardedKernel() { return kernel_; }

    /**
     * Create the lane mirroring the kernel island of the same index
     * (@p rng_seed forks the lane-private RNG). Returns the lane index,
     * which must equal the kernel's island index.
     */
    std::size_t addIslandLane(std::uint64_t rng_seed);

    /** Assign @p lid to @p island (setup time, before traffic). */
    void assignLid(std::uint16_t lid, std::size_t island);

    /** Island owning @p lid; 0 when unsharded or unassigned. */
    std::size_t islandOf(std::uint16_t lid) const;

    /** Islands in the fabric (1 when unsharded). */
    std::size_t
    islandCount() const
    {
        return sharded() ? lanes_.size() : 1;
    }

    /**
     * The island executing the current send — valid inside capture taps
     * and receive handlers; 0 when unsharded. Forged packets carry fake
     * source LIDs, so taps must key per-island state on this, not on
     * islandOf(pkt.srcLid).
     */
    std::size_t egressIsland() const;

    /** Island @p island's queue (the single queue when unsharded). */
    EventQueue& islandEvents(std::size_t island);

    /** Per-island fault hook (island mode; nullptr uninstalls). */
    void setIslandFaultHook(std::size_t island, FaultHook* hook);

    /**
     * Declare to the kernel's edge graph that traffic flows between the
     * islands of the two LIDs, both directions (requests one way, ACKs
     * back). An unassigned destination LID (a timeout experiment's
     * vanishing peer) declares nothing — its packets drop at egress. A
     * no-op when unsharded. rnic::Rnic calls this on every connect.
     */
    void declareRoute(std::uint16_t src_lid, std::uint16_t dst_lid);

    /**
     * Declare dense edges for @p island — the sound fallback for
     * islands whose destinations are not known at setup (a UD QP names
     * its destination per work request).
     */
    void declareDenseIsland(std::size_t island);

    /** BarrierAgent: inject parcels for @p island with effect
     * <= @p horizon, in (arrival, wire-id) merge order. */
    std::uint64_t flushInbound(std::size_t island, Time now,
                               Time horizon) override;

    /** BarrierAgent: earliest buffered parcel effect for @p island. */
    Time inboundEarliest(std::size_t island) override;

    /** BarrierAgent: buffered parcels bound for @p island. */
    std::size_t inboundPending(std::size_t island) override;

    /** @} */

  private:
    /**
     * Stamp a wire id / sent time on an injected or duplicated delivery
     * and schedule it; shared by send() for every pipeline output.
     */
    void deliver(Packet pkt, Time extra_delay);

    /**
     * Per-LID state of the datapath, one cache line per hop: the
     * attached handler plus the egress/ingress link-busy times that used
     * to live in two extra std::maps. LIDs are small, fabric-assigned
     * integers, so the table is a dense vector indexed by LID — the
     * per-packet lookups in send()/deliver() are two array indexings
     * instead of three red-black-tree walks. Detaching a port clears
     * only the handler; the link-busy times survive re-attachment,
     * exactly like the old always-growing std::map entries did.
     */
    struct PortRecord
    {
        PortHandler* handler = nullptr;
        /** Egress link of this LID is serializing until then. */
        Time egressFreeAt;
        /** Ingress link of this LID is serializing until then. */
        Time ingressFreeAt;
        /** Administrative state; only Down gates traffic. */
        PortState state = PortState::Up;
    };

    /** The record for @p lid, growing the table on first touch. */
    PortRecord& port(std::uint16_t lid);

    /**
     * @{ Island-mode datapath. A Parcel is a packet in a cross-island
     * channel: arrive0 is its earliest ingress arrival (egress
     * serialization, latency and chaos delay already applied by the
     * source island); the destination island applies its ingress
     * max-chain when it drains the channel, merging parcels from every
     * source lane in (arrive0, wireId) order — a strict total order,
     * because wire ids are unique. Channels are CrossChannels keyed by
     * the parcel's effect time (arrive0 + perPacketOverhead, the first
     * event it can schedule): producer and consumer islands run
     * concurrently under pairwise channel clocks, and the key is what a
     * drain's horizon threshold compares against.
     */
    struct Parcel
    {
        Time arrive0;
        Time serialization;
        std::uint64_t wireId;
        Packet pkt;
    };

    struct Lane
    {
        Lane(EventQueue* ev, std::uint64_t rng_seed)
            : events(ev), rng(rng_seed)
        {}

        EventQueue* events;
        Rng rng;
        PacketPool pool;
        FaultHook* hook = nullptr;
        std::uint64_t nextWireId = 1;
        std::uint64_t sent = 0;
        std::uint64_t delivered = 0;
        std::uint64_t dropped = 0;
        std::uint64_t injected = 0;
        std::uint64_t portEventDrops = 0;
        /** Island-local replica of down links (keys from linkKey()). */
        std::vector<std::uint32_t> downLinks;
        /** Outbound channels, one per destination island (a deque:
         * CrossChannel holds a mutex and must never move). */
        std::deque<CrossChannel<Parcel>> out;
        std::vector<Parcel> inbox;  ///< drain merge scratch
    };

    std::uint64_t sendSharded(Packet pkt);
    void deliverSharded(std::size_t lane_index, Packet pkt,
                        Time extra_delay);
    void finalizeIngress(std::size_t dst_island, Packet pkt, Time arrive0,
                         Time serialization);
    /** @} */

    static std::uint32_t
    linkKey(std::uint16_t a, std::uint16_t b)
    {
        const std::uint16_t lo = a < b ? a : b;
        const std::uint16_t hi = a < b ? b : a;
        return (static_cast<std::uint32_t>(lo) << 16) | hi;
    }

    static void setLinkDown(std::vector<std::uint32_t>& set,
                            std::uint32_t key, bool down);

    /**
     * Egress gate: src-port-Down and link-down checks, applied to
     * genuine endpoint packets before the fault pipeline. Returns false
     * to drop; sets @p detour to the reroute penalty otherwise.
     */
    bool egressAdmits(const std::vector<std::uint32_t>& down_links,
                      const Packet& pkt, Time* detour) const;

    EventQueue& events_;
    Rng& rng_;
    LinkConfig config_;
    std::vector<PortRecord> ports_;
    std::unique_ptr<LossModel> loss_;
    FaultHook* hook_ = nullptr;
    /**
     * In-flight packets parked between send() and delivery. Delivery
     * callbacks capture only the slot index, so they stay within the
     * event kernel's inline-callback capacity (no allocation per hop) and
     * payload buffers are recycled across packets.
     */
    PacketPool pool_;
    std::vector<CaptureTap> taps_;
    std::uint64_t nextWireId_ = 1;
    std::uint64_t totalSent_ = 0;
    std::uint64_t totalDelivered_ = 0;
    std::uint64_t totalDropped_ = 0;
    std::uint64_t totalInjected_ = 0;
    std::uint64_t portEventDrops_ = 0;
    /** Single-queue down-link set (island mode uses Lane::downLinks). */
    std::vector<std::uint32_t> downLinks_;

    /** @{ Island mode. lanes_ is a deque: stable Lane addresses. */
    ShardedKernel* kernel_ = nullptr;
    std::deque<Lane> lanes_;
    std::vector<std::size_t> islandOfLid_;
    /** @} */
};

} // namespace net
} // namespace ibsim

#endif // IBSIM_NET_FABRIC_HH
