/**
 * @file
 * The switched fabric connecting RNIC ports.
 *
 * Ports register under a Local IDentifier (LID). send() schedules delivery
 * after the link latency plus serialization delay; packets addressed to an
 * unknown LID vanish silently, exactly the failure mode the paper exploits
 * to measure transport timeouts (Sec. IV-B). Capture taps observe every
 * packet at egress (like ibdump on the sending HCA port) including packets
 * that are subsequently dropped.
 */

#ifndef IBSIM_NET_FABRIC_HH
#define IBSIM_NET_FABRIC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/fault_hook.hh"
#include "net/loss.hh"
#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"

namespace ibsim {
namespace net {

/**
 * Receiver interface implemented by RNICs.
 */
class PortHandler
{
  public:
    virtual ~PortHandler() = default;

    /** A packet has arrived at this port. */
    virtual void receive(const Packet& pkt) = 0;
};

/** Static link parameters of the fabric. */
struct LinkConfig
{
    /** One-way propagation + switching latency. */
    Time latency = Time::us(0.9);

    /** Link bandwidth in bytes per second (56 Gb/s FDR by default). */
    double bandwidthBytesPerSec = 56e9 / 8.0;

    /** Per-packet host/NIC processing overhead added to delivery time. */
    Time perPacketOverhead = Time::ns(50);
};

/**
 * Observer invoked for every packet handed to the fabric (before loss).
 */
using CaptureTap = std::function<void(const Packet&, bool dropped)>;

/**
 * The fabric: LID-addressed delivery with latency, serialization and loss.
 */
class Fabric
{
  public:
    Fabric(EventQueue& events, Rng& rng, LinkConfig config = {});

    /** Register @p handler under @p lid. LIDs must be unique. */
    void attach(std::uint16_t lid, PortHandler& handler);

    /** Remove a port (packets to it then vanish). */
    void detach(std::uint16_t lid);

    /**
     * Send a packet. Ownership of the contents transfers; the fabric stamps
     * wireId/sentAt. Returns the wire id (0 if the packet was dropped by a
     * loss model or addressed to an unknown LID — it still got a wire id
     * for capture purposes; 0 is never used).
     */
    std::uint64_t send(Packet pkt);

    /**
     * Install a loss model (replaces the previous one).
     *
     * Compatibility shim: the loss model is stage zero of the fault
     * pipeline — it is consulted before the FaultHook, with the fabric's
     * RNG, exactly as it was before the chaos engine existed, so
     * MatchOnceLoss / BernoulliLoss users keep their packet-for-packet
     * behaviour. New fault classes belong in a chaos::FaultInjector stage
     * (chaos::LossModelStage adapts a LossModel into one).
     */
    void setLossModel(std::unique_ptr<LossModel> model);

    /**
     * Install the fault-injection hook (non-owning; nullptr uninstalls).
     * Consulted after the legacy loss stage for every surviving packet.
     */
    void setFaultHook(FaultHook* hook) { hook_ = hook; }

    /** Add a capture tap observing all traffic. */
    void addTap(CaptureTap tap);

    /**
     * Whether a port is attached under @p lid — the dense PortRecord
     * table bounds check. Egress paths that pre-address packets (UD
     * datagrams) consult this to account would-be silent drops.
     */
    bool
    attached(std::uint16_t lid) const
    {
        return lid < ports_.size() && ports_[lid].handler != nullptr;
    }

    /** Total packets handed to send(). */
    std::uint64_t totalSent() const { return totalSent_; }

    /** Total packets actually delivered. */
    std::uint64_t totalDelivered() const { return totalDelivered_; }

    /** Total packets dropped (loss model, fault hook or unknown LID). */
    std::uint64_t totalDropped() const { return totalDropped_; }

    /** Extra packets materialized by the fault hook (dups, forged NAKs). */
    std::uint64_t totalInjected() const { return totalInjected_; }

    const LinkConfig& config() const { return config_; }

    EventQueue& events() { return events_; }

    /** In-flight packet pool usage (capacity planning / tests). */
    const PacketPool& packetPool() const { return pool_; }

  private:
    /**
     * Stamp a wire id / sent time on an injected or duplicated delivery
     * and schedule it; shared by send() for every pipeline output.
     */
    void deliver(Packet pkt, Time extra_delay);

    /**
     * Per-LID state of the datapath, one cache line per hop: the
     * attached handler plus the egress/ingress link-busy times that used
     * to live in two extra std::maps. LIDs are small, fabric-assigned
     * integers, so the table is a dense vector indexed by LID — the
     * per-packet lookups in send()/deliver() are two array indexings
     * instead of three red-black-tree walks. Detaching a port clears
     * only the handler; the link-busy times survive re-attachment,
     * exactly like the old always-growing std::map entries did.
     */
    struct PortRecord
    {
        PortHandler* handler = nullptr;
        /** Egress link of this LID is serializing until then. */
        Time egressFreeAt;
        /** Ingress link of this LID is serializing until then. */
        Time ingressFreeAt;
    };

    /** The record for @p lid, growing the table on first touch. */
    PortRecord& port(std::uint16_t lid);

    EventQueue& events_;
    Rng& rng_;
    LinkConfig config_;
    std::vector<PortRecord> ports_;
    std::unique_ptr<LossModel> loss_;
    FaultHook* hook_ = nullptr;
    /**
     * In-flight packets parked between send() and delivery. Delivery
     * callbacks capture only the slot index, so they stay within the
     * event kernel's inline-callback capacity (no allocation per hop) and
     * payload buffers are recycled across packets.
     */
    PacketPool pool_;
    std::vector<CaptureTap> taps_;
    std::uint64_t nextWireId_ = 1;
    std::uint64_t totalSent_ = 0;
    std::uint64_t totalDelivered_ = 0;
    std::uint64_t totalDropped_ = 0;
    std::uint64_t totalInjected_ = 0;
};

} // namespace net
} // namespace ibsim

#endif // IBSIM_NET_FABRIC_HH
