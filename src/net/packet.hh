/**
 * @file
 * The packet type exchanged between simulated RNICs.
 *
 * One Packet models one InfiniBand transport packet at the granularity the
 * paper's analysis works at: opcode, PSN, addressing, NAK syndromes and
 * payload. Messages are mapped to one packet per operation (see DESIGN.md,
 * "modeling decisions"): the paper's experiments use 32/100-byte messages,
 * well below a single MTU, so the per-packet PSN bookkeeping of multi-MTU
 * messages is not needed to reproduce any figure.
 */

#ifndef IBSIM_NET_PACKET_HH
#define IBSIM_NET_PACKET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hh"

namespace ibsim {
namespace net {

/** Transport opcodes, matching the subset of IBA the paper exercises. */
enum class Opcode : std::uint8_t
{
    ReadRequest,
    ReadResponse,
    WriteRequest,
    Send,
    Ack,
    Nak,     ///< NAK with a syndrome in Packet::nak
    RnrNak,  ///< Receiver-Not-Ready NAK carrying the RNR timer value
    AtomicRequest,   ///< FETCH_ADD / CMP_SWAP request (ATOMICETH)
    AtomicResponse,  ///< 8-byte original value (ATOMICACKETH)
    CmRearm,         ///< CM-style re-arm request (QP recovery handshake)
    CmRearmAck,      ///< CM-style re-arm reply
};

/** NAK syndromes (IBA AETH codes we model). */
enum class NakCode : std::uint8_t
{
    None,
    PsnSequenceError,   ///< out-of-sequence request PSN at the responder
    RemoteAccessError,  ///< rkey/bounds violation
};

const char* opcodeName(Opcode op);
const char* nakName(NakCode code);

/**
 * A transport packet in flight.
 */
struct Packet
{
    Opcode op = Opcode::Send;

    /** @{ Fabric addressing. */
    std::uint16_t srcLid = 0;
    std::uint16_t dstLid = 0;
    /** @} */

    /** @{ Transport addressing: queue pair numbers. */
    std::uint32_t srcQpn = 0;
    std::uint32_t dstQpn = 0;
    /** @} */

    /** Packet sequence number (request stream or response stream). */
    std::uint32_t psn = 0;

    /** @{ RETH fields for RDMA requests. */
    std::uint64_t raddr = 0;
    std::uint32_t rkey = 0;
    /** @} */

    /** DMA length of the operation (request) or payload size (response). */
    std::uint32_t length = 0;

    /** @{ Segmentation (first/middle/last packets of one message). */
    std::uint32_t segIndex = 0;
    std::uint32_t segCount = 1;
    /** @} */

    /** Payload bytes for data-carrying packets (responses, SEND, WRITE). */
    std::vector<std::uint8_t> payload;

    /** Syndrome for Opcode::Nak. */
    NakCode nak = NakCode::None;

    /** RNR timer value carried by an RNR NAK. */
    Time rnrDelay;

    /** @{ ATOMICETH fields. */
    bool atomicIsCompSwap = false;  ///< false = FETCH_ADD
    std::uint64_t atomicOperand = 0;  ///< add value / swap value
    std::uint64_t atomicCompare = 0;  ///< compare value (CMP_SWAP)
    /** @} */

    /**
     * ConnectX-4 damming-quirk marker (see DESIGN.md #4): set by the
     * requester on requests first transmitted inside another request's
     * pending window; a quirky responder drops such requests. Cleared when
     * the requester retransmits due to a transport timeout or a
     * PSN-sequence-error NAK. This models a hardware-internal state bit,
     * not a wire field.
     */
    bool dammed = false;

    /** True for any retransmission (capture/analysis convenience). */
    bool retransmission = false;

    /**
     * True for a response the responder re-served for a duplicate request
     * (re-served READ data, re-ACKs, atomic replay-cache answers). The
     * invariant oracle's serialization checks judge fresh executions
     * only, so replays must be distinguishable from first responses.
     * Like `dammed`, this models engine-internal ground truth, not a
     * wire field.
     */
    bool replayed = false;

    /**
     * @{ Chaos fault-injection provenance (src/chaos/). The injector marks
     * packets it duplicated, corrupted or forged so that the invariant
     * oracle can tell endpoint behaviour apart from injected wire noise,
     * and so the receiving RNIC can model the ICRC check: a corrupted
     * packet without the crc-evading bit is dropped at ingress, exactly
     * like a real HCA discarding a packet that fails its end-to-end CRC.
     * These model injector-side ground truth, not wire fields.
     */
    static constexpr std::uint8_t chaosDuplicated = 1u << 0;
    static constexpr std::uint8_t chaosCorrupted = 1u << 1;
    static constexpr std::uint8_t chaosForged = 1u << 2;
    static constexpr std::uint8_t chaosCrcEvading = 1u << 3;
    std::uint8_t chaosFlags = 0;
    /** @} */

    /**
     * True when the sending QP has been rerouted by the simulated subnet
     * manager around a down link: the fabric lets such packets pass the
     * link-down egress gate and charges one extra hop of latency for the
     * detour. Models path state, not a wire field.
     */
    bool rerouted = false;

    /**
     * Reset epoch of the sending QP. Incremented each time a QP goes
     * through the reset->init->RTR->RTS recovery path; receivers discard
     * packets whose epoch does not match their own so stale pre-reset
     * traffic cannot corrupt the re-armed PSN streams. Always 0 for QPs
     * that never entered recovery, so legacy runs are unaffected.
     */
    std::uint16_t epoch = 0;

    /** Monotonic id assigned by the fabric when first sent. */
    std::uint64_t wireId = 0;

    /** Time the packet was handed to the fabric. */
    Time sentAt;

    /** Wire size in bytes: payload/DMA length plus header overhead. */
    std::uint32_t wireSize() const;

    /** One-line rendering for traces. */
    std::string str() const;

    /**
     * Process-wide count of str() invocations. str() is the expensive
     * per-packet formatter, and it must never run on a trace-disabled
     * hot path; the datapath tests assert this counter stays flat across
     * such runs.
     */
    static std::uint64_t strCalls();
};

} // namespace net
} // namespace ibsim

#endif // IBSIM_NET_PACKET_HH
