#include "net/packet.hh"

#include <atomic>
#include <cstdio>

namespace ibsim {
namespace net {

namespace {

/** LRH + BTH + ICRC/VCRC overhead, plus RETH/AETH where applicable. */
constexpr std::uint32_t baseHeaderBytes = 26;
constexpr std::uint32_t rethBytes = 16;
constexpr std::uint32_t aethBytes = 4;

} // namespace

const char*
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ReadRequest: return "READ_REQ";
      case Opcode::ReadResponse: return "READ_RESP";
      case Opcode::WriteRequest: return "WRITE";
      case Opcode::Send: return "SEND";
      case Opcode::Ack: return "ACK";
      case Opcode::Nak: return "NAK";
      case Opcode::RnrNak: return "RNR_NAK";
      case Opcode::AtomicRequest: return "ATOMIC_REQ";
      case Opcode::AtomicResponse: return "ATOMIC_RESP";
      case Opcode::CmRearm: return "CM_REARM";
      case Opcode::CmRearmAck: return "CM_REARM_ACK";
    }
    return "?";
}

const char*
nakName(NakCode code)
{
    switch (code) {
      case NakCode::None: return "none";
      case NakCode::PsnSequenceError: return "PSN_SEQ_ERR";
      case NakCode::RemoteAccessError: return "REM_ACCESS_ERR";
    }
    return "?";
}

std::uint32_t
Packet::wireSize() const
{
    std::uint32_t size = baseHeaderBytes;
    switch (op) {
      case Opcode::ReadRequest:
      case Opcode::WriteRequest:
        size += rethBytes;
        break;
      case Opcode::AtomicRequest:
        size += 28;  // ATOMICETH
        break;
      case Opcode::AtomicResponse:
        size += aethBytes + 8;  // AETH + ATOMICACKETH
        break;
      case Opcode::ReadResponse:
      case Opcode::Ack:
      case Opcode::Nak:
      case Opcode::RnrNak:
      case Opcode::CmRearmAck:
        size += aethBytes;
        break;
      case Opcode::Send:
      case Opcode::CmRearm:
        break;
    }
    switch (op) {
      case Opcode::ReadResponse:
      case Opcode::WriteRequest:
      case Opcode::Send:
        size += length;
        break;
      default:
        break;
    }
    return size;
}

namespace {

std::atomic<std::uint64_t> strCallCount{0};

} // namespace

std::uint64_t
Packet::strCalls()
{
    return strCallCount.load(std::memory_order_relaxed);
}

std::string
Packet::str() const
{
    strCallCount.fetch_add(1, std::memory_order_relaxed);
    char buf[160];
    std::string extra;
    if (op == Opcode::Nak)
        extra = std::string(" ") + nakName(nak);
    if (op == Opcode::RnrNak)
        extra = " delay=" + rnrDelay.str();
    if (retransmission)
        extra += " [rexmit]";
    if (dammed)
        extra += " [dammed]";
    if (chaosFlags & chaosDuplicated)
        extra += " [chaos-dup]";
    if (chaosFlags & chaosCorrupted)
        extra += " [chaos-corrupt]";
    if (chaosFlags & chaosForged)
        extra += " [chaos-forged]";
    std::snprintf(buf, sizeof(buf),
                  "%-9s lid %u->%u qp %u->%u psn=%u len=%u%s",
                  opcodeName(op), srcLid, dstLid, srcQpn, dstQpn, psn,
                  length, extra.c_str());
    return buf;
}

} // namespace net
} // namespace ibsim
