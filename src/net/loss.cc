#include "net/loss.hh"

// Loss models are header-only; this file anchors them in the build.
namespace ibsim {
namespace net {
} // namespace net
} // namespace ibsim
