/**
 * @file
 * Free-list pool of net::Packet objects.
 *
 * Every packet the fabric carries used to live inside a std::function
 * closure: a heap allocation per hop for the closure itself plus the
 * payload vector churn when the closure died. The pool keeps a stable
 * vector of Packet slots and recycles them: acquire() hands out a slot
 * index (stable across pool growth, so delivery callbacks capture just
 * the index), release() returns it for reuse. Packets are *moved* into
 * their slot, so data payloads change hands without a byte copy and the
 * empty-payload packets of a flood (requests, ACKs, NAKs) recycle slots
 * with zero allocator traffic for millions of deliveries.
 */

#ifndef IBSIM_NET_PACKET_POOL_HH
#define IBSIM_NET_PACKET_POOL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "net/packet.hh"

namespace ibsim {
namespace net {

/** Usage counters for capacity planning and tests. */
struct PacketPoolStats
{
    std::uint64_t acquires = 0;   ///< total acquire() calls
    std::uint64_t grows = 0;      ///< acquires that had to extend the pool
    std::size_t inFlight = 0;     ///< slots currently held
    std::size_t peakInFlight = 0; ///< high-water mark of held slots
};

/**
 * Index-addressed free-list pool of packets.
 */
class PacketPool
{
  public:
    /** Take a slot. The packet's fields are stale; assign before use. */
    std::uint32_t
    acquire()
    {
        ++stats_.acquires;
        std::uint32_t idx;
        if (!free_.empty()) {
            idx = free_.back();
            free_.pop_back();
        } else {
            ++stats_.grows;
            slots_.emplace_back();
            idx = static_cast<std::uint32_t>(slots_.size() - 1);
        }
        if (++stats_.inFlight > stats_.peakInFlight)
            stats_.peakInFlight = stats_.inFlight;
        return idx;
    }

    /**
     * The packet in slot @p idx. Deque storage keeps the reference stable
     * even when a reentrant acquire() (a receive handler sending a reply
     * through the fabric) grows the pool mid-delivery.
     */
    Packet& at(std::uint32_t idx) { return slots_[idx]; }
    const Packet& at(std::uint32_t idx) const { return slots_[idx]; }

    /** Return a slot; the payload buffer's capacity is retained. */
    void
    release(std::uint32_t idx)
    {
        slots_[idx].payload.clear();
        free_.push_back(idx);
        --stats_.inFlight;
    }

    /** Total slots ever created (bounds steady-state memory). */
    std::size_t size() const { return slots_.size(); }

    const PacketPoolStats& stats() const { return stats_; }

  private:
    std::deque<Packet> slots_;
    std::vector<std::uint32_t> free_;
    PacketPoolStats stats_;
};

} // namespace net
} // namespace ibsim

#endif // IBSIM_NET_PACKET_POOL_HH
