#include "net/fabric.hh"

#include <cassert>
#include <utility>

#include "simcore/log.hh"

namespace ibsim {
namespace net {

namespace {

log::Component traceFabric("fabric");

} // namespace

Fabric::Fabric(EventQueue& events, Rng& rng, LinkConfig config)
    : events_(events), rng_(rng), config_(config),
      loss_(std::make_unique<NoLoss>())
{
}

Fabric::PortRecord&
Fabric::port(std::uint16_t lid)
{
    if (lid >= ports_.size())
        ports_.resize(static_cast<std::size_t>(lid) + 1);
    return ports_[lid];
}

void
Fabric::attach(std::uint16_t lid, PortHandler& handler)
{
    PortRecord& record = port(lid);
    assert(record.handler == nullptr && "duplicate LID");
    record.handler = &handler;
}

void
Fabric::detach(std::uint16_t lid)
{
    if (lid < ports_.size())
        ports_[lid].handler = nullptr;
}

void
Fabric::setLossModel(std::unique_ptr<LossModel> model)
{
    assert(model);
    loss_ = std::move(model);
}

void
Fabric::addTap(CaptureTap tap)
{
    taps_.push_back(std::move(tap));
}

std::uint64_t
Fabric::send(Packet pkt)
{
    pkt.wireId = nextWireId_++;
    pkt.sentAt = events_.now();
    ++totalSent_;

    // Stage zero of the fault pipeline: the legacy LossModel, consulted
    // with the fabric RNG before the hook so pre-chaos loss users keep
    // their exact packet-for-packet (and RNG draw-for-draw) behaviour.
    if (loss_->shouldDrop(pkt, rng_)) {
        ++totalDropped_;
        for (const auto& tap : taps_)
            tap(pkt, true);
        IBSIM_TRACE(traceFabric, events_.now(),
                    pkt.str() + "  ** DROPPED **");
        return pkt.wireId;
    }

    if (hook_ != nullptr) {
        std::vector<FaultHook::Delivery> out;
        hook_->processPacket(pkt, events_.now(), out);
        if (out.empty()) {
            ++totalDropped_;
            for (const auto& tap : taps_)
                tap(pkt, true);
            IBSIM_TRACE(traceFabric, events_.now(),
                        pkt.str() + "  ** DROPPED (chaos) **");
            return pkt.wireId;
        }
        const std::uint64_t id = pkt.wireId;
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (i == 0) {
                out[i].pkt.wireId = id;
            } else {
                out[i].pkt.wireId = nextWireId_++;
                ++totalInjected_;
            }
            out[i].pkt.sentAt = events_.now();
            deliver(std::move(out[i].pkt), out[i].extraDelay);
        }
        return id;
    }

    const std::uint64_t id = pkt.wireId;
    deliver(std::move(pkt), Time());
    return id;
}

void
Fabric::deliver(Packet pkt, Time extra_delay)
{
    PortRecord& dst = port(pkt.dstLid);
    const bool unknownLid = (dst.handler == nullptr);

    for (const auto& tap : taps_)
        tap(pkt, unknownLid);

    IBSIM_TRACE(traceFabric, events_.now(),
                pkt.str() + (unknownLid ? "  ** DROPPED **" : ""));

    if (unknownLid) {
        ++totalDropped_;
        return;
    }

    // Per-port serialization: back-to-back packets from one port (or into
    // one port) queue behind each other; disjoint port pairs do not
    // contend. This matters for the flood experiments, where the wire is
    // actually busy. Chaos extra delay models switch-internal queueing,
    // so it lands between egress serialization and ingress arrival.
    // Note: port() for the source LID can grow the table and invalidate
    // `dst`, so the handler is read out first.
    PortHandler* handler = dst.handler;
    const Time serialization = Time::sec(
        static_cast<double>(pkt.wireSize()) / config_.bandwidthBytesPerSec);
    PortRecord& src = port(pkt.srcLid);
    const Time start = std::max(events_.now(), src.egressFreeAt);
    src.egressFreeAt = start + serialization;
    Time& ingress = ports_[pkt.dstLid].ingressFreeAt;
    const Time arrive =
        std::max(src.egressFreeAt + config_.latency + extra_delay, ingress);
    ingress = arrive + serialization;
    const Time deliverAt = arrive + config_.perPacketOverhead;

    // Park the packet in the pool and capture only its slot index: the
    // delivery closure stays within the event kernel's inline capacity
    // (no allocation per hop) and the slot's payload buffer is recycled.
    // The payload moves — no byte copy, and for the empty-payload flood
    // packets no allocator traffic at all.
    const std::uint32_t slot = pool_.acquire();
    pool_.at(slot) = std::move(pkt);

    auto deliver_cb = [this, handler, slot] {
        ++totalDelivered_;
        handler->receive(pool_.at(slot));
        pool_.release(slot);
    };
    static_assert(EventQueue::Callback::storesInline<decltype(deliver_cb)>,
                  "delivery closure must not allocate");
    events_.schedule(deliverAt, std::move(deliver_cb));
}

} // namespace net
} // namespace ibsim
