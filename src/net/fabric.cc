#include "net/fabric.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "simcore/log.hh"

namespace ibsim {
namespace net {

namespace {

log::Component traceFabric("fabric");

/**
 * Island executing the current send()/receive chain. One value per
 * worker thread: each island runs whole windows on one worker, and the
 * value is re-stamped at every send, so nested sends (a receive handler
 * answering) always see their own island.
 */
thread_local std::size_t tlsEgressIsland = 0;

} // namespace

Fabric::Fabric(EventQueue& events, Rng& rng, LinkConfig config)
    : events_(events), rng_(rng), config_(config),
      loss_(std::make_unique<NoLoss>())
{
}

Fabric::PortRecord&
Fabric::port(std::uint16_t lid)
{
    if (lid >= ports_.size())
        ports_.resize(static_cast<std::size_t>(lid) + 1);
    return ports_[lid];
}

void
Fabric::attach(std::uint16_t lid, PortHandler& handler)
{
    PortRecord& record = port(lid);
    assert(record.handler == nullptr && "duplicate LID");
    record.handler = &handler;
}

void
Fabric::detach(std::uint16_t lid)
{
    if (lid < ports_.size())
        ports_[lid].handler = nullptr;
}

void
Fabric::setLossModel(std::unique_ptr<LossModel> model)
{
    assert(model);
    loss_ = std::move(model);
}

void
Fabric::addTap(CaptureTap tap)
{
    taps_.push_back(std::move(tap));
}

void
Fabric::setPortState(std::uint16_t lid, PortState state)
{
    port(lid).state = state;
}

void
Fabric::raisePortEvent(std::uint16_t lid, const PortEvent& ev)
{
    if (attached(lid))
        ports_[lid].handler->portEvent(ev);
}

void
Fabric::setLinkDown(std::vector<std::uint32_t>& set, std::uint32_t key,
                    bool down)
{
    auto it = std::find(set.begin(), set.end(), key);
    if (down && it == set.end()) {
        set.push_back(key);
    } else if (!down && it != set.end()) {
        *it = set.back();
        set.pop_back();
    }
}

void
Fabric::setLinkState(std::uint16_t a, std::uint16_t b, bool up)
{
    setLinkDown(downLinks_, linkKey(a, b), !up);
}

void
Fabric::setLaneLinkState(std::size_t island, std::uint16_t a,
                         std::uint16_t b, bool up)
{
    if (!sharded()) {
        setLinkState(a, b, up);
        return;
    }
    assert(island < lanes_.size());
    setLinkDown(lanes_[island].downLinks, linkKey(a, b), !up);
}

bool
Fabric::laneLinkDown(std::size_t island, std::uint16_t a,
                     std::uint16_t b) const
{
    const std::vector<std::uint32_t>& set =
        sharded() ? lanes_[island].downLinks : downLinks_;
    return std::find(set.begin(), set.end(), linkKey(a, b)) != set.end();
}

bool
Fabric::egressAdmits(const std::vector<std::uint32_t>& down_links,
                     const Packet& pkt, Time* detour) const
{
    *detour = Time();
    if (pkt.srcLid < ports_.size() &&
        ports_[pkt.srcLid].state == PortState::Down)
        return false;
    if (!down_links.empty() &&
        std::find(down_links.begin(), down_links.end(),
                  linkKey(pkt.srcLid, pkt.dstLid)) != down_links.end()) {
        if (!pkt.rerouted)
            return false;
        // SM reroute around the cut link: one extra hop of latency.
        *detour = config_.latency;
    }
    return true;
}

std::uint64_t
Fabric::totalPortEventDrops() const
{
    std::uint64_t total = portEventDrops_;
    for (const Lane& lane : lanes_)
        total += lane.portEventDrops;
    return total;
}

std::uint64_t
Fabric::send(Packet pkt)
{
    if (sharded())
        return sendSharded(std::move(pkt));

    pkt.wireId = nextWireId_++;
    pkt.sentAt = events_.now();
    ++totalSent_;

    // Port/link gate: a down source port or a down link kills the packet
    // at egress, before any fault stage — the wire simply is not there.
    Time detour;
    if (!egressAdmits(downLinks_, pkt, &detour)) {
        ++totalDropped_;
        ++portEventDrops_;
        for (const auto& tap : taps_)
            tap(pkt, true);
        IBSIM_TRACE(traceFabric, events_.now(),
                    pkt.str() + "  ** DROPPED (link down) **");
        return pkt.wireId;
    }

    // Stage zero of the fault pipeline: the legacy LossModel, consulted
    // with the fabric RNG before the hook so pre-chaos loss users keep
    // their exact packet-for-packet (and RNG draw-for-draw) behaviour.
    if (loss_->shouldDrop(pkt, rng_)) {
        ++totalDropped_;
        for (const auto& tap : taps_)
            tap(pkt, true);
        IBSIM_TRACE(traceFabric, events_.now(),
                    pkt.str() + "  ** DROPPED **");
        return pkt.wireId;
    }

    if (hook_ != nullptr) {
        std::vector<FaultHook::Delivery> out;
        hook_->processPacket(pkt, events_.now(), out);
        if (out.empty()) {
            ++totalDropped_;
            for (const auto& tap : taps_)
                tap(pkt, true);
            IBSIM_TRACE(traceFabric, events_.now(),
                        pkt.str() + "  ** DROPPED (chaos) **");
            return pkt.wireId;
        }
        const std::uint64_t id = pkt.wireId;
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (i == 0) {
                out[i].pkt.wireId = id;
            } else {
                out[i].pkt.wireId = nextWireId_++;
                ++totalInjected_;
            }
            out[i].pkt.sentAt = events_.now();
            deliver(std::move(out[i].pkt), out[i].extraDelay + detour);
        }
        return id;
    }

    const std::uint64_t id = pkt.wireId;
    deliver(std::move(pkt), detour);
    return id;
}

void
Fabric::deliver(Packet pkt, Time extra_delay)
{
    PortRecord& dst = port(pkt.dstLid);
    const bool unknownLid = (dst.handler == nullptr);
    const bool portDown = dst.state == PortState::Down;

    for (const auto& tap : taps_)
        tap(pkt, unknownLid || portDown);

    IBSIM_TRACE(traceFabric, events_.now(),
                pkt.str() +
                    (unknownLid || portDown ? "  ** DROPPED **" : ""));

    if (unknownLid || portDown) {
        ++totalDropped_;
        if (portDown)
            ++portEventDrops_;
        return;
    }

    // Per-port serialization: back-to-back packets from one port (or into
    // one port) queue behind each other; disjoint port pairs do not
    // contend. This matters for the flood experiments, where the wire is
    // actually busy. Chaos extra delay models switch-internal queueing,
    // so it lands between egress serialization and ingress arrival.
    // Note: port() for the source LID can grow the table and invalidate
    // `dst`, so the handler is read out first.
    PortHandler* handler = dst.handler;
    const Time serialization = Time::sec(
        static_cast<double>(pkt.wireSize()) / config_.bandwidthBytesPerSec);
    PortRecord& src = port(pkt.srcLid);
    const Time start = std::max(events_.now(), src.egressFreeAt);
    src.egressFreeAt = start + serialization;
    Time& ingress = ports_[pkt.dstLid].ingressFreeAt;
    const Time arrive =
        std::max(src.egressFreeAt + config_.latency + extra_delay, ingress);
    ingress = arrive + serialization;
    const Time deliverAt = arrive + config_.perPacketOverhead;

    // Park the packet in the pool and capture only its slot index: the
    // delivery closure stays within the event kernel's inline capacity
    // (no allocation per hop) and the slot's payload buffer is recycled.
    // The payload moves — no byte copy, and for the empty-payload flood
    // packets no allocator traffic at all.
    const std::uint32_t slot = pool_.acquire();
    pool_.at(slot) = std::move(pkt);

    auto deliver_cb = [this, handler, slot] {
        ++totalDelivered_;
        handler->receive(pool_.at(slot));
        pool_.release(slot);
    };
    static_assert(EventQueue::Callback::storesInline<decltype(deliver_cb)>,
                  "delivery closure must not allocate");
    events_.schedule(deliverAt, std::move(deliver_cb));
}

// ---------------------------------------------------------------------
// Island mode.
// ---------------------------------------------------------------------

void
Fabric::enableSharding(ShardedKernel& kernel)
{
    assert(lanes_.empty() && ports_.empty() &&
           "enable island mode before any lane or port exists");
    kernel_ = &kernel;
    kernel_->addBarrierAgent(this);
}

std::size_t
Fabric::addIslandLane(std::uint64_t rng_seed)
{
    assert(sharded());
    const std::size_t index = lanes_.size();
    lanes_.emplace_back(&kernel_->island(index), rng_seed);
    for (Lane& lane : lanes_)
        lane.out.resize(lanes_.size());
    return index;
}

void
Fabric::assignLid(std::uint16_t lid, std::size_t island)
{
    assert(sharded() && island < lanes_.size());
    if (lid >= islandOfLid_.size())
        islandOfLid_.resize(static_cast<std::size_t>(lid) + 1, 0);
    islandOfLid_[lid] = island;
    port(lid);  // pre-grow the port table: no resizing once traffic runs
}

std::size_t
Fabric::islandOf(std::uint16_t lid) const
{
    return lid < islandOfLid_.size() ? islandOfLid_[lid] : 0;
}

std::size_t
Fabric::egressIsland() const
{
    return sharded() ? tlsEgressIsland : 0;
}

EventQueue&
Fabric::islandEvents(std::size_t island)
{
    return sharded() ? *lanes_[island].events : events_;
}

void
Fabric::setIslandFaultHook(std::size_t island, FaultHook* hook)
{
    assert(sharded() && island < lanes_.size());
    lanes_[island].hook = hook;
}

std::uint64_t
Fabric::sendSharded(Packet pkt)
{
    const std::size_t laneIndex = islandOf(pkt.srcLid);
    Lane& lane = lanes_[laneIndex];
    tlsEgressIsland = laneIndex;

    // Per-lane wire-id spaces: the island in the high bits keeps ids
    // globally unique (and the barrier merge a strict total order)
    // without any cross-island counter.
    pkt.wireId = (static_cast<std::uint64_t>(laneIndex + 1) << 44) |
                 lane.nextWireId++;
    pkt.sentAt = lane.events->now();
    ++lane.sent;

    // Port/link gate against this island's own link-state replica: the
    // flap driver toggles each endpoint's replica from events on that
    // endpoint's island, so this read never crosses islands.
    Time detour;
    if (!egressAdmits(lane.downLinks, pkt, &detour)) {
        ++lane.dropped;
        ++lane.portEventDrops;
        for (const auto& tap : taps_)
            tap(pkt, true);
        IBSIM_TRACE(traceFabric, lane.events->now(),
                    pkt.str() + "  ** DROPPED (link down) **");
        return pkt.wireId;
    }

    if (loss_->shouldDrop(pkt, lane.rng)) {
        ++lane.dropped;
        for (const auto& tap : taps_)
            tap(pkt, true);
        IBSIM_TRACE(traceFabric, lane.events->now(),
                    pkt.str() + "  ** DROPPED **");
        return pkt.wireId;
    }

    if (lane.hook != nullptr) {
        std::vector<FaultHook::Delivery> out;
        lane.hook->processPacket(pkt, lane.events->now(), out);
        if (out.empty()) {
            ++lane.dropped;
            for (const auto& tap : taps_)
                tap(pkt, true);
            IBSIM_TRACE(traceFabric, lane.events->now(),
                        pkt.str() + "  ** DROPPED (chaos) **");
            return pkt.wireId;
        }
        const std::uint64_t id = pkt.wireId;
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (i == 0) {
                out[i].pkt.wireId = id;
            } else {
                out[i].pkt.wireId =
                    (static_cast<std::uint64_t>(laneIndex + 1) << 44) |
                    lane.nextWireId++;
                ++lane.injected;
            }
            out[i].pkt.sentAt = lane.events->now();
            deliverSharded(laneIndex, std::move(out[i].pkt),
                           out[i].extraDelay + detour);
        }
        return id;
    }

    const std::uint64_t id = pkt.wireId;
    deliverSharded(laneIndex, std::move(pkt), detour);
    return id;
}

void
Fabric::deliverSharded(std::size_t lane_index, Packet pkt,
                       Time extra_delay)
{
    Lane& lane = lanes_[lane_index];
    const bool unknownLid = pkt.dstLid >= ports_.size() ||
                            ports_[pkt.dstLid].handler == nullptr;

    for (const auto& tap : taps_)
        tap(pkt, unknownLid);

    IBSIM_TRACE(traceFabric, lane.events->now(),
                pkt.str() + (unknownLid ? "  ** DROPPED **" : ""));

    if (unknownLid) {
        ++lane.dropped;
        return;
    }

    const Time serialization = Time::sec(
        static_cast<double>(pkt.wireSize()) / config_.bandwidthBytesPerSec);

    // Egress serialization max-chain on the source port — owned by this
    // island, unless the packet was forged with a foreign source LID
    // (ForgedNakStage): then it "appears from the wire" at the executing
    // island with no egress queueing, keeping every PortRecord
    // single-island-owned.
    Time depart;
    if (islandOf(pkt.srcLid) == lane_index) {
        PortRecord& src = ports_[pkt.srcLid];
        const Time start = std::max(lane.events->now(), src.egressFreeAt);
        src.egressFreeAt = start + serialization;
        depart = src.egressFreeAt;
    } else {
        depart = lane.events->now() + serialization;
    }
    const Time arrive0 = depart + config_.latency + extra_delay;

    const std::size_t dstIsland = islandOf(pkt.dstLid);
    if (dstIsland == lane_index) {
        finalizeIngress(dstIsland, std::move(pkt), arrive0, serialization);
    } else {
        assert(kernel_->hasEdge(lane_index, dstIsland) &&
               "cross-island send along an undeclared route");
        // Keyed by effect time: the first event this parcel can schedule
        // at the destination (ingress chaining only pushes it later).
        const Time effect = arrive0 + config_.perPacketOverhead;
        const std::uint64_t wireId = pkt.wireId;
        lane.out[dstIsland].push(
            effect.toNs(),
            Parcel{arrive0, serialization, wireId, std::move(pkt)});
    }
}

void
Fabric::finalizeIngress(std::size_t dst_island, Packet pkt, Time arrive0,
                        Time serialization)
{
    Lane& dst = lanes_[dst_island];
    PortRecord& rec = ports_[pkt.dstLid];
    if (rec.state == PortState::Down) {
        // Administrative ingress gate, checked on the owning island. The
        // egress tap already saw the packet as delivered; this late drop
        // models a port that died while the packet was in flight.
        ++dst.dropped;
        ++dst.portEventDrops;
        return;
    }
    PortHandler* handler = rec.handler;
    const Time arrive = std::max(arrive0, rec.ingressFreeAt);
    rec.ingressFreeAt = arrive + serialization;
    const Time deliverAt = arrive + config_.perPacketOverhead;

    const std::uint32_t slot = dst.pool.acquire();
    dst.pool.at(slot) = std::move(pkt);

    const auto island = static_cast<std::uint32_t>(dst_island);
    auto deliver_cb = [this, island, handler, slot] {
        Lane& lane = lanes_[island];
        ++lane.delivered;
        tlsEgressIsland = island;
        handler->receive(lane.pool.at(slot));
        lane.pool.release(slot);
    };
    static_assert(EventQueue::Callback::storesInline<decltype(deliver_cb)>,
                  "delivery closure must not allocate");
    dst.events->schedule(deliverAt, std::move(deliver_cb));
}

std::uint64_t
Fabric::flushInbound(std::size_t island, Time /*now*/, Time horizon)
{
    // Drain every parcel whose effect fits below the window horizon.
    // The kernel only passes a horizon at or below the island's safe
    // channel-clock bound, which guarantees all such parcels are already
    // visible — so the drained set, and hence the merge below, is a pure
    // function of virtual state (deterministic at any worker count).
    Lane& dst = lanes_[island];
    std::vector<Parcel>& in = dst.inbox;
    in.clear();
    const std::int64_t threshold = horizon.toNs();
    const Time overhead = config_.perPacketOverhead;
    // Only in-neighbor lanes can hold parcels for this island (cross-
    // island sends along undeclared routes assert in deliverSharded), so
    // the scan skips the rest of the mesh.
    for (std::uint32_t src_index : kernel_->inNeighbors(island)) {
        lanes_[src_index].out[island].drainUpTo(
            threshold,
            [overhead](const Parcel& p) {
                return (p.arrive0 + overhead).toNs();
            },
            in);
    }
    if (in.empty())
        return 0;

    // Canonical merge order: (arrival, wire-id) is a strict total order
    // (wire ids are unique), so the ingress max-chain below is identical
    // whatever the worker count or source-lane completion order was.
    // Effect order equals arrival order (a constant offset apart), so
    // successive drains inject in globally sorted order too.
    std::sort(in.begin(), in.end(), [](const Parcel& a, const Parcel& b) {
        return a.arrive0 != b.arrive0 ? a.arrive0 < b.arrive0
                                      : a.wireId < b.wireId;
    });
    for (Parcel& parcel : in) {
        finalizeIngress(island, std::move(parcel.pkt), parcel.arrive0,
                        parcel.serialization);
    }
    return in.size();
}

Time
Fabric::inboundEarliest(std::size_t island)
{
    // Probed on every island step: restrict to in-neighbor lanes (the
    // only ones that can feed this island) — on a sparse mesh this turns
    // an all-islands sweep into a handful of atomic loads.
    std::int64_t earliest = CrossChannel<Parcel>::kEmpty;
    for (std::uint32_t src_index : kernel_->inNeighbors(island))
        earliest = std::min(earliest,
                            lanes_[src_index].out[island].minKey());
    return earliest == CrossChannel<Parcel>::kEmpty ? Time::max()
                                                    : Time::fromNs(earliest);
}

std::size_t
Fabric::inboundPending(std::size_t island)
{
    std::size_t total = 0;
    for (Lane& src : lanes_)
        total += src.out[island].size();
    return total;
}

void
Fabric::declareRoute(std::uint16_t src_lid, std::uint16_t dst_lid)
{
    if (!sharded())
        return;
    if (dst_lid >= islandOfLid_.size())
        return;  // never-assigned LID: packets to it drop at egress
    const std::size_t src = islandOf(src_lid);
    const std::size_t dst = islandOf(dst_lid);
    kernel_->declareEdge(src, dst);
    kernel_->declareEdge(dst, src);
}

void
Fabric::declareDenseIsland(std::size_t island)
{
    if (sharded())
        kernel_->declareDense(island);
}

std::uint64_t
Fabric::totalSent() const
{
    std::uint64_t total = totalSent_;
    for (const Lane& lane : lanes_)
        total += lane.sent;
    return total;
}

std::uint64_t
Fabric::totalDelivered() const
{
    std::uint64_t total = totalDelivered_;
    for (const Lane& lane : lanes_)
        total += lane.delivered;
    return total;
}

std::uint64_t
Fabric::totalDropped() const
{
    std::uint64_t total = totalDropped_;
    for (const Lane& lane : lanes_)
        total += lane.dropped;
    return total;
}

std::uint64_t
Fabric::totalInjected() const
{
    std::uint64_t total = totalInjected_;
    for (const Lane& lane : lanes_)
        total += lane.injected;
    return total;
}

} // namespace net
} // namespace ibsim
