#include "net/fabric.hh"

#include <cassert>
#include <utility>

#include "simcore/log.hh"

namespace ibsim {
namespace net {

Fabric::Fabric(EventQueue& events, Rng& rng, LinkConfig config)
    : events_(events), rng_(rng), config_(config),
      loss_(std::make_unique<NoLoss>())
{
}

void
Fabric::attach(std::uint16_t lid, PortHandler& handler)
{
    assert(ports_.find(lid) == ports_.end() && "duplicate LID");
    ports_[lid] = &handler;
}

void
Fabric::detach(std::uint16_t lid)
{
    ports_.erase(lid);
}

void
Fabric::setLossModel(std::unique_ptr<LossModel> model)
{
    assert(model);
    loss_ = std::move(model);
}

void
Fabric::addTap(CaptureTap tap)
{
    taps_.push_back(std::move(tap));
}

std::uint64_t
Fabric::send(Packet pkt)
{
    pkt.wireId = nextWireId_++;
    pkt.sentAt = events_.now();
    ++totalSent_;

    auto it = ports_.find(pkt.dstLid);
    const bool unknownLid = (it == ports_.end());
    const bool lossDrop = loss_->shouldDrop(pkt, rng_);
    const bool dropped = unknownLid || lossDrop;

    for (const auto& tap : taps_)
        tap(pkt, dropped);

    log::trace(events_.now(), "fabric",
               pkt.str() + (dropped ? "  ** DROPPED **" : ""));

    if (dropped) {
        ++totalDropped_;
        return pkt.wireId;
    }

    // Per-port serialization: back-to-back packets from one port (or into
    // one port) queue behind each other; disjoint port pairs do not
    // contend. This matters for the flood experiments, where the wire is
    // actually busy.
    const Time serialization = Time::sec(
        static_cast<double>(pkt.wireSize()) / config_.bandwidthBytesPerSec);
    Time& egress = egressFreeAt_[pkt.srcLid];
    const Time start = std::max(events_.now(), egress);
    egress = start + serialization;
    Time& ingress = ingressFreeAt_[pkt.dstLid];
    const Time arrive = std::max(egress + config_.latency, ingress);
    ingress = arrive + serialization;
    const Time deliverAt = arrive + config_.perPacketOverhead;

    PortHandler* handler = it->second;
    const std::uint64_t id = pkt.wireId;

    // Park the packet in the pool and capture only its slot index: the
    // delivery closure stays within the event kernel's inline capacity
    // (no allocation per hop) and the slot's payload buffer is recycled.
    const std::uint32_t slot = pool_.acquire();
    pool_.at(slot) = pkt;  // copy-assign reuses the slot's payload capacity

    auto deliver = [this, handler, slot] {
        ++totalDelivered_;
        handler->receive(pool_.at(slot));
        pool_.release(slot);
    };
    static_assert(EventQueue::Callback::storesInline<decltype(deliver)>,
                  "delivery closure must not allocate");
    events_.schedule(deliverAt, std::move(deliver));
    return id;
}

} // namespace net
} // namespace ibsim
