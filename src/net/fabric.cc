#include "net/fabric.hh"

#include <cassert>
#include <utility>

#include "simcore/log.hh"

namespace ibsim {
namespace net {

Fabric::Fabric(EventQueue& events, Rng& rng, LinkConfig config)
    : events_(events), rng_(rng), config_(config),
      loss_(std::make_unique<NoLoss>())
{
}

void
Fabric::attach(std::uint16_t lid, PortHandler& handler)
{
    assert(ports_.find(lid) == ports_.end() && "duplicate LID");
    ports_[lid] = &handler;
}

void
Fabric::detach(std::uint16_t lid)
{
    ports_.erase(lid);
}

void
Fabric::setLossModel(std::unique_ptr<LossModel> model)
{
    assert(model);
    loss_ = std::move(model);
}

void
Fabric::addTap(CaptureTap tap)
{
    taps_.push_back(std::move(tap));
}

std::uint64_t
Fabric::send(Packet pkt)
{
    pkt.wireId = nextWireId_++;
    pkt.sentAt = events_.now();
    ++totalSent_;

    // Stage zero of the fault pipeline: the legacy LossModel, consulted
    // with the fabric RNG before the hook so pre-chaos loss users keep
    // their exact packet-for-packet (and RNG draw-for-draw) behaviour.
    if (loss_->shouldDrop(pkt, rng_)) {
        ++totalDropped_;
        for (const auto& tap : taps_)
            tap(pkt, true);
        log::trace(events_.now(), "fabric",
                   pkt.str() + "  ** DROPPED **");
        return pkt.wireId;
    }

    if (hook_ != nullptr) {
        std::vector<FaultHook::Delivery> out;
        hook_->processPacket(pkt, events_.now(), out);
        if (out.empty()) {
            ++totalDropped_;
            for (const auto& tap : taps_)
                tap(pkt, true);
            log::trace(events_.now(), "fabric",
                       pkt.str() + "  ** DROPPED (chaos) **");
            return pkt.wireId;
        }
        const std::uint64_t id = pkt.wireId;
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (i == 0) {
                out[i].pkt.wireId = id;
            } else {
                out[i].pkt.wireId = nextWireId_++;
                ++totalInjected_;
            }
            out[i].pkt.sentAt = events_.now();
            deliver(std::move(out[i].pkt), out[i].extraDelay);
        }
        return id;
    }

    const std::uint64_t id = pkt.wireId;
    deliver(std::move(pkt), Time());
    return id;
}

void
Fabric::deliver(Packet pkt, Time extra_delay)
{
    auto it = ports_.find(pkt.dstLid);
    const bool unknownLid = (it == ports_.end());

    for (const auto& tap : taps_)
        tap(pkt, unknownLid);

    log::trace(events_.now(), "fabric",
               pkt.str() + (unknownLid ? "  ** DROPPED **" : ""));

    if (unknownLid) {
        ++totalDropped_;
        return;
    }

    // Per-port serialization: back-to-back packets from one port (or into
    // one port) queue behind each other; disjoint port pairs do not
    // contend. This matters for the flood experiments, where the wire is
    // actually busy. Chaos extra delay models switch-internal queueing,
    // so it lands between egress serialization and ingress arrival.
    const Time serialization = Time::sec(
        static_cast<double>(pkt.wireSize()) / config_.bandwidthBytesPerSec);
    Time& egress = egressFreeAt_[pkt.srcLid];
    const Time start = std::max(events_.now(), egress);
    egress = start + serialization;
    Time& ingress = ingressFreeAt_[pkt.dstLid];
    const Time arrive =
        std::max(egress + config_.latency + extra_delay, ingress);
    ingress = arrive + serialization;
    const Time deliverAt = arrive + config_.perPacketOverhead;

    PortHandler* handler = it->second;

    // Park the packet in the pool and capture only its slot index: the
    // delivery closure stays within the event kernel's inline capacity
    // (no allocation per hop) and the slot's payload buffer is recycled.
    const std::uint32_t slot = pool_.acquire();
    pool_.at(slot) = pkt;  // copy-assign reuses the slot's payload capacity

    auto deliver_cb = [this, handler, slot] {
        ++totalDelivered_;
        handler->receive(pool_.at(slot));
        pool_.release(slot);
    };
    static_assert(EventQueue::Callback::storesInline<decltype(deliver_cb)>,
                  "delivery closure must not allocate");
    events_.schedule(deliverAt, std::move(deliver_cb));
}

} // namespace net
} // namespace ibsim
