#include "mem/address_space.hh"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ibsim {
namespace mem {

std::uint64_t
AddressSpace::alloc(std::uint64_t size)
{
    assert(size > 0);
    const std::uint64_t base = nextFree_;
    const std::uint64_t pages = (size + pageSize - 1) / pageSize;
    nextFree_ += pages * pageSize;
    return base;
}

bool
AddressSpace::present(std::uint64_t vaddr) const
{
    return pages_.find(pageOf(vaddr)) != pages_.end();
}

AddressSpace::Page&
AddressSpace::ensurePage(std::uint64_t page_idx)
{
    auto [it, inserted] = pages_.try_emplace(page_idx);
    if (inserted)
        it->second.fill(0);
    return it->second;
}

void
AddressSpace::touch(std::uint64_t vaddr, std::uint64_t len)
{
    assert(len > 0);
    const std::uint64_t first = pageOf(vaddr);
    const std::uint64_t last = pageOf(vaddr + len - 1);
    for (std::uint64_t p = first; p <= last; ++p)
        ensurePage(p);
}

bool
AddressSpace::populatePage(std::uint64_t vaddr)
{
    const std::uint64_t idx = pageOf(vaddr);
    const bool fresh = pages_.find(idx) == pages_.end();
    ensurePage(idx);
    return fresh;
}

void
AddressSpace::releasePage(std::uint64_t vaddr)
{
    pages_.erase(pageOf(vaddr));
}

void
AddressSpace::write(std::uint64_t vaddr,
                    const std::vector<std::uint8_t>& data)
{
    std::uint64_t off = 0;
    while (off < data.size()) {
        const std::uint64_t va = vaddr + off;
        Page& page = ensurePage(pageOf(va));
        const std::uint64_t in_page = va % pageSize;
        const std::uint64_t chunk =
            std::min<std::uint64_t>(pageSize - in_page, data.size() - off);
        std::memcpy(page.data() + in_page, data.data() + off, chunk);
        off += chunk;
    }
}

std::vector<std::uint8_t>
AddressSpace::read(std::uint64_t vaddr, std::uint64_t len) const
{
    std::vector<std::uint8_t> out(len, 0);
    std::uint64_t off = 0;
    while (off < len) {
        const std::uint64_t va = vaddr + off;
        const std::uint64_t in_page = va % pageSize;
        const std::uint64_t chunk =
            std::min<std::uint64_t>(pageSize - in_page, len - off);
        auto it = pages_.find(pageOf(va));
        if (it != pages_.end())
            std::memcpy(out.data() + off, it->second.data() + in_page,
                        chunk);
        off += chunk;
    }
    return out;
}

} // namespace mem
} // namespace ibsim
