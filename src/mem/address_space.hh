/**
 * @file
 * Host virtual address space model.
 *
 * Each simulated node owns one AddressSpace: a sparse, page-granular store
 * of bytes with a per-page present bit. Pages become present when the host
 * touches them or when the ODP driver resolves a network page fault against
 * them; the kernel can also release pages again, which drives the RNIC
 * invalidation flow (paper Sec. III-A).
 */

#ifndef IBSIM_MEM_ADDRESS_SPACE_HH
#define IBSIM_MEM_ADDRESS_SPACE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ibsim {
namespace mem {

/** Page size used throughout, matching the paper's 4096-byte alignment. */
constexpr std::uint64_t pageSize = 4096;

/** Page index containing a virtual address. */
constexpr std::uint64_t
pageOf(std::uint64_t vaddr)
{
    return vaddr / pageSize;
}

/**
 * A sparse byte-addressable space with per-page presence.
 */
class AddressSpace
{
  public:
    AddressSpace() = default;
    AddressSpace(const AddressSpace&) = delete;
    AddressSpace& operator=(const AddressSpace&) = delete;

    /**
     * Reserve a virtual range and return its base address.
     *
     * Allocation only reserves address space; no page becomes present
     * (malloc'd-but-untouched memory, the state that triggers ODP faults).
     * The base is always page aligned.
     */
    std::uint64_t alloc(std::uint64_t size);

    /** Whether the page holding @p vaddr is present (backed by a frame). */
    bool present(std::uint64_t vaddr) const;

    /** Make all pages in [vaddr, vaddr + len) present (first touch). */
    void touch(std::uint64_t vaddr, std::uint64_t len);

    /**
     * Make the page holding @p vaddr present.
     *
     * @return true if the page was newly populated.
     */
    bool populatePage(std::uint64_t vaddr);

    /**
     * Release the page holding @p vaddr (kernel reclaim / madvise).
     * Contents are discarded; the page reverts to not-present.
     */
    void releasePage(std::uint64_t vaddr);

    /** Write bytes; pages touched become present. */
    void write(std::uint64_t vaddr, const std::vector<std::uint8_t>& data);

    /**
     * Read bytes. Non-present pages read as zero without becoming
     * present (a simulator-level peek, not a host access).
     */
    std::vector<std::uint8_t> read(std::uint64_t vaddr,
                                   std::uint64_t len) const;

    /** Number of currently present pages. */
    std::size_t presentPages() const { return pages_.size(); }

    /** Total bytes of reserved address space. */
    std::uint64_t reservedBytes() const { return nextFree_ - base_; }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    Page& ensurePage(std::uint64_t page_idx);

    static constexpr std::uint64_t base_ = 0x10000000;
    std::uint64_t nextFree_ = base_;
    std::unordered_map<std::uint64_t, Page> pages_;
};

} // namespace mem
} // namespace ibsim

#endif // IBSIM_MEM_ADDRESS_SPACE_HH
