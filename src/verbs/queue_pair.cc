#include "verbs/queue_pair.hh"

#include <cassert>

#include "rnic/rnic.hh"

namespace ibsim {
namespace verbs {

void
QueuePair::connect(std::uint16_t dst_lid, std::uint32_t dst_qpn)
{
    rnic_->connectQp(*ctx_, dst_lid, dst_qpn);
}

void
QueuePair::postRead(std::uint64_t laddr, std::uint32_t lkey,
                    std::uint64_t raddr, std::uint32_t rkey,
                    std::uint32_t length, std::uint64_t wr_id)
{
    assert(length > 0);
    rnic::SendWqe wqe;
    wqe.wrId = wr_id;
    wqe.op = WrOpcode::Read;
    wqe.laddr = laddr;
    wqe.lkey = lkey;
    wqe.raddr = raddr;
    wqe.rkey = rkey;
    wqe.length = length;
    rnic_->postSend(*ctx_, wqe);
}

void
QueuePair::postWrite(std::uint64_t laddr, std::uint32_t lkey,
                     std::uint64_t raddr, std::uint32_t rkey,
                     std::uint32_t length, std::uint64_t wr_id)
{
    assert(length > 0);
    rnic::SendWqe wqe;
    wqe.wrId = wr_id;
    wqe.op = WrOpcode::Write;
    wqe.laddr = laddr;
    wqe.lkey = lkey;
    wqe.raddr = raddr;
    wqe.rkey = rkey;
    wqe.length = length;
    rnic_->postSend(*ctx_, wqe);
}

void
QueuePair::postSend(std::uint64_t laddr, std::uint32_t lkey,
                    std::uint32_t length, std::uint64_t wr_id)
{
    assert(length > 0);
    rnic::SendWqe wqe;
    wqe.wrId = wr_id;
    wqe.op = WrOpcode::Send;
    wqe.laddr = laddr;
    wqe.lkey = lkey;
    wqe.length = length;
    rnic_->postSend(*ctx_, wqe);
}

void
QueuePair::postSendUd(const AddressHandle& ah, std::uint64_t laddr,
                      std::uint32_t lkey, std::uint32_t length,
                      std::uint64_t wr_id)
{
    assert(length > 0);
    assert(ctx_->config.transport == Transport::Ud);
    rnic::SendWqe wqe;
    wqe.wrId = wr_id;
    wqe.op = WrOpcode::Send;
    wqe.laddr = laddr;
    wqe.lkey = lkey;
    wqe.length = length;
    // Stash the address handle in the remote fields.
    wqe.raddr = (static_cast<std::uint64_t>(ah.lid) << 32) | ah.qpn;
    rnic_->postSend(*ctx_, wqe);
}

void
QueuePair::postFetchAdd(std::uint64_t laddr, std::uint32_t lkey,
                        std::uint64_t raddr, std::uint32_t rkey,
                        std::uint64_t add, std::uint64_t wr_id)
{
    rnic::SendWqe wqe;
    wqe.wrId = wr_id;
    wqe.op = WrOpcode::FetchAdd;
    wqe.laddr = laddr;
    wqe.lkey = lkey;
    wqe.raddr = raddr;
    wqe.rkey = rkey;
    wqe.length = 8;
    wqe.atomicOperand = add;
    rnic_->postSend(*ctx_, wqe);
}

void
QueuePair::postCompSwap(std::uint64_t laddr, std::uint32_t lkey,
                        std::uint64_t raddr, std::uint32_t rkey,
                        std::uint64_t compare, std::uint64_t swap,
                        std::uint64_t wr_id)
{
    rnic::SendWqe wqe;
    wqe.wrId = wr_id;
    wqe.op = WrOpcode::CompSwap;
    wqe.laddr = laddr;
    wqe.lkey = lkey;
    wqe.raddr = raddr;
    wqe.rkey = rkey;
    wqe.length = 8;
    wqe.atomicOperand = swap;
    wqe.atomicCompare = compare;
    rnic_->postSend(*ctx_, wqe);
}

void
QueuePair::postRecv(std::uint64_t addr, std::uint32_t lkey,
                    std::uint32_t length, std::uint64_t wr_id)
{
    rnic::RecvWqe wqe;
    wqe.wrId = wr_id;
    wqe.addr = addr;
    wqe.length = length;
    wqe.lkey = lkey;
    rnic_->postRecv(*ctx_, wqe);
}

} // namespace verbs
} // namespace ibsim
