/**
 * @file
 * Core vocabulary of the verbs-like API.
 *
 * Names deliberately track InfiniBand verbs (work request, completion queue
 * entry, Local ACK Timeout, Retry Count, minimal RNR NAK delay) so the
 * paper's micro-benchmark (Fig. 3) can be transcribed almost verbatim
 * against this API.
 */

#ifndef IBSIM_VERBS_TYPES_HH
#define IBSIM_VERBS_TYPES_HH

#include <cstdint>
#include <string>

#include "simcore/time.hh"

namespace ibsim {
namespace verbs {

/** Work request opcodes (the subset the paper exercises). */
enum class WrOpcode : std::uint8_t
{
    Read,      ///< one-sided RDMA READ
    Write,     ///< one-sided RDMA WRITE
    Send,      ///< two-sided SEND (matches a posted RECV)
    Recv,      ///< receive-side WQE (reported in RQ completions)
    FetchAdd,  ///< 64-bit atomic fetch-and-add
    CompSwap,  ///< 64-bit atomic compare-and-swap
};

/** Transport service types (paper Sec. II lists UD/UC/RD/RC). */
enum class Transport : std::uint8_t
{
    Rc,  ///< Reliable Connection: acked, retransmitted, ordered
    Uc,  ///< Unreliable Connection: connected, no acks, loss is silent
    Ud,  ///< Unreliable Datagram: unconnected, per-WR addressing
};

/** Destination of a UD send (ibv_ah analogue). */
struct AddressHandle
{
    std::uint16_t lid = 0;
    std::uint32_t qpn = 0;
};

const char* transportName(Transport transport);

/** Completion status codes (ibv_wc_status subset). */
enum class WcStatus : std::uint8_t
{
    Success,
    RetryExcErr,     ///< IBV_WC_RETRY_EXC_ERR: transport retries exhausted
    RnrRetryExcErr,  ///< IBV_WC_RNR_RETRY_EXC_ERR
    RemAccessErr,    ///< IBV_WC_REM_ACCESS_ERR
    WrFlushErr,      ///< IBV_WC_WR_FLUSH_ERR: flushed after QP error
};

const char* wrOpcodeName(WrOpcode op);
const char* wcStatusName(WcStatus status);

/**
 * Async event classes (ibv_event_type subset). Port/path events are
 * raised by the fabric's port-event model (net::PortEvent) and forwarded
 * by the RNIC; QP events are raised by the RNIC's own error/recovery
 * machinery.
 */
enum class AsyncEventType : std::uint8_t
{
    PortActive,   ///< IBV_EVENT_PORT_ACTIVE
    PortError,    ///< IBV_EVENT_PORT_ERR
    PathActive,   ///< path (mesh link) to peerLid recovered
    PathError,    ///< path (mesh link) to peerLid cut
    QpFatal,      ///< IBV_EVENT_QP_FATAL: a QP entered the Error state
    QpRecovered,  ///< a QP completed the reset->init->RTR->RTS re-arm
};

const char* asyncEventName(AsyncEventType type);

/**
 * An asynchronous event (ibv_async_event analogue) delivered to taps
 * registered with rnic::Rnic::addAsyncEventTap().
 */
struct AsyncEvent
{
    AsyncEventType type = AsyncEventType::PortError;
    std::uint16_t lid = 0;      ///< local port the event concerns
    std::uint16_t peerLid = 0;  ///< far end (path/QP events; 0 otherwise)
    std::uint32_t qpn = 0;      ///< affected QP (QP events; 0 otherwise)
    bool redundantPath = false; ///< path events: reroute was possible
    Time at;

    std::string str() const;
};

/**
 * A completion queue entry.
 */
struct WorkCompletion
{
    std::uint64_t wrId = 0;
    WcStatus status = WcStatus::Success;
    WrOpcode opcode = WrOpcode::Read;
    std::uint32_t byteLen = 0;
    std::uint32_t qpn = 0;

    /** @{ Datagram source (UD receives only; 0 otherwise). */
    std::uint16_t srcLid = 0;
    std::uint32_t srcQpn = 0;
    /** @} */

    Time completedAt;

    bool ok() const { return status == WcStatus::Success; }
    std::string str() const;
};

/**
 * Reliable Connection QP attributes (ibv_qp_attr subset).
 */
struct QpConfig
{
    /** Transport service type. The paper's experiments all use RC. */
    Transport transport = Transport::Rc;

    /**
     * Local ACK Timeout, the 5-bit exponent C_ack. The transport timeout
     * interval is T_tr = 4.096 us * 2^C_ack, clamped from below by the
     * device's vendor minimum (DeviceProfile::minCack). 0 disables the
     * timeout entirely (IBA spec).
     */
    std::uint8_t cack = 14;

    /** Retry Count C_retry: transport retries before RETRY_EXC_ERR. */
    std::uint8_t cretry = 7;

    /**
     * RNR retry budget; 7 means infinite per the IBA encoding, matching
     * common practice and keeping RNR waits from aborting the paper's
     * experiments.
     */
    std::uint8_t rnrRetry = 7;

    /**
     * Minimal RNR NAK delay advertised by this QP as a *responder*: the
     * smallest period the remote sender must wait before retransmitting a
     * packet we RNR-NAKed.
     */
    Time minRnrNakDelay = Time::ms(1.28);

    /**
     * Requester pipelining window: requests in flight (sent, not yet
     * completed) at once. Models the send queue's processing window; a
     * go-back-N rewind replays at most this many requests per burst.
     */
    std::uint32_t maxInflight = 128;

    /**
     * Outstanding READ/ATOMIC limit (ibv max_rd_atomic; mlx5 hardware
     * caps this at 16). 0 leaves it unbounded — the default here, since
     * the paper's micro-benchmark posts thousands of READs per QP and
     * its observed behaviour is reproduced without the cap.
     */
    std::uint32_t maxRdAtomic = 0;
};

/** Scatter/gather element for local buffers. */
struct Sge
{
    std::uint64_t addr = 0;
    std::uint32_t length = 0;
    std::uint32_t lkey = 0;
};

} // namespace verbs
} // namespace ibsim

#endif // IBSIM_VERBS_TYPES_HH
