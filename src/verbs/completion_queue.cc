#include "verbs/completion_queue.hh"

namespace ibsim {
namespace verbs {

void
CompletionQueue::push(const WorkCompletion& wc)
{
    queue_.push_back(wc);
    ++total_;
    if (wc.ok()) {
        ++success_;
    } else if (!firstErrorSeen_) {
        firstErrorSeen_ = true;
        firstError_ = wc;
    }
    if (listener_)
        listener_(wc);
}

std::vector<WorkCompletion>
CompletionQueue::poll(std::size_t max)
{
    std::vector<WorkCompletion> out;
    const std::size_t n =
        (max == 0) ? queue_.size() : std::min(max, queue_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(queue_.front());
        queue_.pop_front();
    }
    return out;
}

} // namespace verbs
} // namespace ibsim
