#include "verbs/completion_queue.hh"

namespace ibsim {
namespace verbs {

void
CompletionQueue::push(const WorkCompletion& wc)
{
    if (capacity_ != 0 && queue_.size() >= capacity_) {
        // CQ overrun: the entry is lost before the application can see
        // it. Nothing downstream (totals, listener, taps) observes it.
        ++overflows_;
        if (overflowHandler_)
            overflowHandler_(wc);
        return;
    }
    queue_.push_back(wc);
    ++total_;
    if (wc.ok()) {
        ++success_;
    } else if (!firstErrorSeen_) {
        firstErrorSeen_ = true;
        firstError_ = wc;
    }
    for (const auto& tap : taps_)
        tap(wc);
    if (listener_)
        listener_(wc);
}

std::vector<WorkCompletion>
CompletionQueue::poll(std::size_t max)
{
    std::vector<WorkCompletion> out;
    const std::size_t n =
        (max == 0) ? queue_.size() : std::min(max, queue_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(queue_.front());
        queue_.pop_front();
    }
    return out;
}

} // namespace verbs
} // namespace ibsim
