/**
 * @file
 * Registered memory regions.
 *
 * A MemoryRegion couples a virtual range of the owning node's address space
 * with an RNIC translation table. Pinned regions (the conventional RDMA
 * path) are fully mapped at registration; ODP regions start unmapped and
 * fault pages in on first network access (paper Sec. III).
 */

#ifndef IBSIM_VERBS_MEMORY_REGION_HH
#define IBSIM_VERBS_MEMORY_REGION_HH

#include <cstdint>

#include "mem/address_space.hh"
#include "odp/translation_table.hh"

namespace ibsim {
namespace verbs {

/** Registration access flags (ibv_access_flags subset). */
struct AccessFlags
{
    bool remoteRead = true;
    bool remoteWrite = true;
    bool onDemand = false;  ///< IBV_ACCESS_ON_DEMAND

    /** Conventional pinned registration. */
    static AccessFlags pinned() { return {}; }

    /** ODP registration (explicit ODP on this range). */
    static AccessFlags
    odp()
    {
        AccessFlags f;
        f.onDemand = true;
        return f;
    }

    /**
     * Implicit ODP: one registration covering the whole address space
     * (paper Sec. III), freeing the application from per-buffer
     * registration entirely.
     */
    static AccessFlags
    implicitOdp()
    {
        AccessFlags f;
        f.onDemand = true;
        f.wholeAddressSpace = true;
        return f;
    }

    bool wholeAddressSpace = false;  ///< implicit ODP marker
};

/**
 * One registered region. Created via Node::registerMemory().
 */
class MemoryRegion
{
  public:
    MemoryRegion(std::uint32_t key, std::uint64_t addr, std::uint64_t length,
                 AccessFlags access, mem::AddressSpace& memory);

    MemoryRegion(const MemoryRegion&) = delete;
    MemoryRegion& operator=(const MemoryRegion&) = delete;

    /** Local and remote key (one value serves both, as in mlx5). */
    std::uint32_t lkey() const { return key_; }
    std::uint32_t rkey() const { return key_; }

    std::uint64_t addr() const { return addr_; }
    std::uint64_t length() const { return length_; }
    const AccessFlags& access() const { return access_; }
    bool odp() const { return access_.onDemand; }

    /** Whether [addr, addr+len) lies inside the region. */
    bool contains(std::uint64_t addr, std::uint32_t len) const;

    /** Whether this is an implicit-ODP whole-address-space region. */
    bool implicit() const { return access_.wholeAddressSpace; }

    odp::TranslationTable& table() { return table_; }
    const odp::TranslationTable& table() const { return table_; }

    mem::AddressSpace& memory() { return memory_; }

  private:
    std::uint32_t key_;
    std::uint64_t addr_;
    std::uint64_t length_;
    AccessFlags access_;
    mem::AddressSpace& memory_;
    odp::TranslationTable table_;
};

} // namespace verbs
} // namespace ibsim

#endif // IBSIM_VERBS_MEMORY_REGION_HH
