#include "verbs/memory_region.hh"

namespace ibsim {
namespace verbs {

MemoryRegion::MemoryRegion(std::uint32_t key, std::uint64_t addr,
                           std::uint64_t length, AccessFlags access,
                           mem::AddressSpace& memory)
    : key_(key), addr_(addr), length_(length), access_(access),
      memory_(memory), table_(access.onDemand)
{
    if (!access.onDemand) {
        // Pinned registration: the host pages are pinned down and the RNIC
        // translation covers the whole region up front.
        memory_.touch(addr, length);
        table_.mapRange(addr, length);
    }
}

bool
MemoryRegion::contains(std::uint64_t addr, std::uint32_t len) const
{
    if (access_.wholeAddressSpace)
        return true;  // implicit ODP spans the whole address space
    if (addr < addr_)
        return false;
    return addr + len <= addr_ + length_;
}

} // namespace verbs
} // namespace ibsim
