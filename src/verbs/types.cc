#include "verbs/types.hh"

#include <cstdio>

namespace ibsim {
namespace verbs {

const char*
wrOpcodeName(WrOpcode op)
{
    switch (op) {
      case WrOpcode::Read: return "READ";
      case WrOpcode::Write: return "WRITE";
      case WrOpcode::Send: return "SEND";
      case WrOpcode::Recv: return "RECV";
      case WrOpcode::FetchAdd: return "FETCH_ADD";
      case WrOpcode::CompSwap: return "CMP_SWAP";
    }
    return "?";
}

const char*
transportName(Transport transport)
{
    switch (transport) {
      case Transport::Rc: return "RC";
      case Transport::Uc: return "UC";
      case Transport::Ud: return "UD";
    }
    return "?";
}

const char*
wcStatusName(WcStatus status)
{
    switch (status) {
      case WcStatus::Success: return "SUCCESS";
      case WcStatus::RetryExcErr: return "RETRY_EXC_ERR";
      case WcStatus::RnrRetryExcErr: return "RNR_RETRY_EXC_ERR";
      case WcStatus::RemAccessErr: return "REM_ACCESS_ERR";
      case WcStatus::WrFlushErr: return "WR_FLUSH_ERR";
    }
    return "?";
}

const char*
asyncEventName(AsyncEventType type)
{
    switch (type) {
      case AsyncEventType::PortActive: return "PORT_ACTIVE";
      case AsyncEventType::PortError: return "PORT_ERR";
      case AsyncEventType::PathActive: return "PATH_ACTIVE";
      case AsyncEventType::PathError: return "PATH_ERR";
      case AsyncEventType::QpFatal: return "QP_FATAL";
      case AsyncEventType::QpRecovered: return "QP_RECOVERED";
    }
    return "?";
}

std::string
AsyncEvent::str() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "event %s lid=%u peer=%u qpn=%u t=%s",
                  asyncEventName(type), lid, peerLid, qpn,
                  at.str().c_str());
    return buf;
}

std::string
WorkCompletion::str() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "wc wr_id=%llu %s %s len=%u qpn=%u t=%s",
                  static_cast<unsigned long long>(wrId),
                  wrOpcodeName(opcode), wcStatusName(status), byteLen, qpn,
                  completedAt.str().c_str());
    return buf;
}

} // namespace verbs
} // namespace ibsim
