/**
 * @file
 * The queue pair handle — the application-facing verbs endpoint.
 *
 * QueuePair is a thin, copyable handle over the RNIC's per-QP context. It
 * exposes the post verbs of the paper's micro-benchmark
 * (post_rdma_read & friends, Fig. 3) plus connection setup, including the
 * deliberately-wrong-LID connection used to measure transport timeouts
 * (Sec. IV-B).
 */

#ifndef IBSIM_VERBS_QUEUE_PAIR_HH
#define IBSIM_VERBS_QUEUE_PAIR_HH

#include <cstdint>

#include "rnic/qp_context.hh"
#include "verbs/types.hh"

namespace ibsim {

namespace rnic {
class Rnic;
} // namespace rnic

namespace verbs {

/**
 * Handle to one RC queue pair.
 */
class QueuePair
{
  public:
    QueuePair() : rnic_(nullptr), ctx_(nullptr) {}
    QueuePair(rnic::Rnic& rnic, rnic::QpContext& ctx)
        : rnic_(&rnic), ctx_(&ctx)
    {}

    bool valid() const { return ctx_ != nullptr; }
    std::uint32_t qpn() const { return ctx_->qpn; }
    const QpConfig& config() const { return ctx_->config; }

    /** Point this QP at a remote (lid, qpn) endpoint and move to RTS. */
    void connect(std::uint16_t dst_lid, std::uint32_t dst_qpn);

    /** Post a one-sided RDMA READ: remote [raddr] -> local [laddr]. */
    void postRead(std::uint64_t laddr, std::uint32_t lkey,
                  std::uint64_t raddr, std::uint32_t rkey,
                  std::uint32_t length, std::uint64_t wr_id);

    /** Post a one-sided RDMA WRITE: local [laddr] -> remote [raddr]. */
    void postWrite(std::uint64_t laddr, std::uint32_t lkey,
                   std::uint64_t raddr, std::uint32_t rkey,
                   std::uint32_t length, std::uint64_t wr_id);

    /** Post a two-sided SEND of local [laddr, laddr+length). */
    void postSend(std::uint64_t laddr, std::uint32_t lkey,
                  std::uint32_t length, std::uint64_t wr_id);

    /** Post a datagram SEND to @p ah (UD QPs only). */
    void postSendUd(const AddressHandle& ah, std::uint64_t laddr,
                    std::uint32_t lkey, std::uint32_t length,
                    std::uint64_t wr_id);

    /** Post a RECV WQE accepting up to @p length bytes at @p addr. */
    void postRecv(std::uint64_t addr, std::uint32_t lkey,
                  std::uint32_t length, std::uint64_t wr_id);

    /**
     * Post a 64-bit atomic fetch-and-add on remote [raddr]; the original
     * value lands at local [laddr].
     */
    void postFetchAdd(std::uint64_t laddr, std::uint32_t lkey,
                      std::uint64_t raddr, std::uint32_t rkey,
                      std::uint64_t add, std::uint64_t wr_id);

    /**
     * Post a 64-bit atomic compare-and-swap on remote [raddr]: if the
     * remote value equals @p compare it becomes @p swap; the original
     * value lands at local [laddr].
     */
    void postCompSwap(std::uint64_t laddr, std::uint32_t lkey,
                      std::uint64_t raddr, std::uint32_t rkey,
                      std::uint64_t compare, std::uint64_t swap,
                      std::uint64_t wr_id);

    /** Whether the QP is in the error state (after a fatal completion). */
    bool inError() const { return ctx_->errorState; }

    /** Requester work still in flight. */
    std::size_t outstanding() const { return ctx_->outstanding.size(); }

    const rnic::QpStats& stats() const { return ctx_->stats; }

    rnic::QpContext& context() { return *ctx_; }

  private:
    rnic::Rnic* rnic_;
    rnic::QpContext* ctx_;
};

} // namespace verbs
} // namespace ibsim

#endif // IBSIM_VERBS_QUEUE_PAIR_HH
