/**
 * @file
 * Completion queues.
 *
 * RNICs push WorkCompletion entries here; applications poll. Counters track
 * cumulative totals so experiment harnesses can wait for "all operations
 * completed" without retaining every entry.
 */

#ifndef IBSIM_VERBS_COMPLETION_QUEUE_HH
#define IBSIM_VERBS_COMPLETION_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "verbs/types.hh"

namespace ibsim {
namespace verbs {

/**
 * A completion queue shared by any number of QPs.
 */
class CompletionQueue
{
  public:
    CompletionQueue() = default;
    CompletionQueue(const CompletionQueue&) = delete;
    CompletionQueue& operator=(const CompletionQueue&) = delete;

    /** RNIC-side: insert a completion. */
    void push(const WorkCompletion& wc);

    /**
     * Install a push listener (completion-channel style notification).
     * The entry still lands in the queue for polling.
     */
    void
    setListener(std::function<void(const WorkCompletion&)> listener)
    {
        listener_ = std::move(listener);
    }

    /** Poll up to @p max entries (all pending if max == 0). */
    std::vector<WorkCompletion> poll(std::size_t max = 0);

    /** Entries pushed over the queue's lifetime. */
    std::uint64_t totalCompletions() const { return total_; }

    /** Successful entries pushed over the lifetime. */
    std::uint64_t totalSuccess() const { return success_; }

    /** Errored entries pushed over the lifetime. */
    std::uint64_t totalErrors() const { return total_ - success_; }

    /** Entries currently pending (pushed, not yet polled). */
    std::size_t pending() const { return queue_.size(); }

    /** First errored completion seen, if any. */
    bool hasError() const { return firstErrorSeen_; }
    const WorkCompletion& firstError() const { return firstError_; }

  private:
    std::function<void(const WorkCompletion&)> listener_;
    std::deque<WorkCompletion> queue_;
    std::uint64_t total_ = 0;
    std::uint64_t success_ = 0;
    bool firstErrorSeen_ = false;
    WorkCompletion firstError_;
};

} // namespace verbs
} // namespace ibsim

#endif // IBSIM_VERBS_COMPLETION_QUEUE_HH
