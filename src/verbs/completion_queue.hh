/**
 * @file
 * Completion queues.
 *
 * RNICs push WorkCompletion entries here; applications poll. Counters track
 * cumulative totals so experiment harnesses can wait for "all operations
 * completed" without retaining every entry.
 */

#ifndef IBSIM_VERBS_COMPLETION_QUEUE_HH
#define IBSIM_VERBS_COMPLETION_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "verbs/types.hh"

namespace ibsim {
namespace verbs {

/**
 * A completion queue shared by any number of QPs.
 */
class CompletionQueue
{
  public:
    CompletionQueue() = default;
    CompletionQueue(const CompletionQueue&) = delete;
    CompletionQueue& operator=(const CompletionQueue&) = delete;

    /** RNIC-side: insert a completion. */
    void push(const WorkCompletion& wc);

    /**
     * Install a push listener (completion-channel style notification).
     * The entry still lands in the queue for polling.
     */
    void
    setListener(std::function<void(const WorkCompletion&)> listener)
    {
        listener_ = std::move(listener);
    }

    /**
     * Add a passive observer of every accepted completion, independent of
     * the single listener slot. Observers (e.g. the chaos invariant
     * monitor) run before the listener and never consume entries.
     */
    void
    addTap(std::function<void(const WorkCompletion&)> tap)
    {
        taps_.push_back(std::move(tap));
    }

    /**
     * Cap the pending depth (chaos CQ-overflow pressure). Completions
     * pushed while @p capacity entries are already pending are LOST —
     * counted in overflows() and reported to the overflow handler, but
     * invisible to poll(), the listener, taps and the totals, exactly
     * like a real CQ overrun losing CQEs. 0 (the default) is unbounded.
     */
    void setCapacity(std::size_t capacity) { capacity_ = capacity; }

    /** Completions lost to the capacity cap. */
    std::uint64_t overflows() const { return overflows_; }

    /** Notified (with the lost entry) on each overflow. */
    void
    setOverflowHandler(std::function<void(const WorkCompletion&)> handler)
    {
        overflowHandler_ = std::move(handler);
    }

    /** Poll up to @p max entries (all pending if max == 0). */
    std::vector<WorkCompletion> poll(std::size_t max = 0);

    /** Entries pushed over the queue's lifetime. */
    std::uint64_t totalCompletions() const { return total_; }

    /** Successful entries pushed over the lifetime. */
    std::uint64_t totalSuccess() const { return success_; }

    /** Errored entries pushed over the lifetime. */
    std::uint64_t totalErrors() const { return total_ - success_; }

    /** Entries currently pending (pushed, not yet polled). */
    std::size_t pending() const { return queue_.size(); }

    /** First errored completion seen, if any. */
    bool hasError() const { return firstErrorSeen_; }
    const WorkCompletion& firstError() const { return firstError_; }

  private:
    std::function<void(const WorkCompletion&)> listener_;
    std::vector<std::function<void(const WorkCompletion&)>> taps_;
    std::function<void(const WorkCompletion&)> overflowHandler_;
    std::deque<WorkCompletion> queue_;
    std::size_t capacity_ = 0;
    std::uint64_t overflows_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t success_ = 0;
    bool firstErrorSeen_ = false;
    WorkCompletion firstError_;
};

} // namespace verbs
} // namespace ibsim

#endif // IBSIM_VERBS_COMPLETION_QUEUE_HH
