/**
 * @file
 * ucxlite — a UCX-like tag-matching messaging layer over the verbs API.
 *
 * The paper's pitfalls were first hit through UCX (Sec. IX-A: "UCX
 * prioritized ODP over direct memory registration by default, and we were
 * even unaware of the use of ODP"). This module models the relevant slice
 * of such middleware so the pitfalls can be reproduced the way
 * applications actually meet them:
 *
 *  - tag-matched nonblocking send/recv;
 *  - an *eager* protocol for small messages (payload rides the control
 *    SEND);
 *  - a *rendezvous* protocol for large messages: the sender advertises
 *    its buffer (RTS), the receiver pulls it with an RDMA READ and then
 *    confirms with a FIN SEND — the READ-followed-by-SEND shape that
 *    packet damming punishes;
 *  - a memory domain that either registers user buffers on demand
 *    (implicit ODP — the UCX default the paper warns about) or through a
 *    pin-down registration cache (the conventional path).
 *
 * The layer is deliberately small but complete enough that MiniDsm-style
 * protocols and the damming/flood experiments can run unchanged on top.
 */

#ifndef IBSIM_UCXLITE_UCX_LITE_HH
#define IBSIM_UCXLITE_UCX_LITE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.hh"
#include "regcache/registration_cache.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace ucxlite {

/** Worker configuration. */
struct UcxConfig
{
    /** Payloads up to this size go eager; larger go rendezvous. */
    std::uint32_t eagerThreshold = 1024;

    /**
     * Register user buffers via implicit ODP (the UCX default the paper
     * calls out) instead of the pin-down registration cache.
     */
    bool useOdp = true;

    /** Transport attributes (UCX defaults per paper Sec. VII). */
    verbs::QpConfig qpConfig = ucxDefaults();

    /** Control receive slots per endpoint. */
    std::size_t ctrlSlots = 64;

    static verbs::QpConfig
    ucxDefaults()
    {
        verbs::QpConfig config;
        config.cack = 18;
        config.cretry = 7;
        config.minRnrNakDelay = Time::ms(0.96);
        return config;
    }
};

/** A remote memory descriptor for one-sided RMA (ucp_rkey analogue). */
struct RemoteMemory
{
    std::uint64_t addr = 0;
    std::uint32_t rkey = 0;
    std::uint32_t len = 0;
};

/** Worker statistics. */
struct UcxStats
{
    std::uint64_t eagerSends = 0;
    std::uint64_t rendezvousSends = 0;
    std::uint64_t unexpectedMessages = 0;
    std::uint64_t rendezvousReads = 0;
};

class UcxWorker;

/**
 * A connection from one worker to a peer. Obtained via
 * UcxWorker::connectTo(); sends are issued on endpoints, receives are
 * posted on the worker (any-source tag matching, as in UCX).
 */
class UcxEndpoint
{
  public:
    /**
     * Nonblocking tagged send of [addr, addr+len) on the local node.
     * @return a request id; poll UcxWorker::completed().
     */
    std::uint64_t tagSend(std::uint64_t tag, std::uint64_t addr,
                          std::uint32_t len);

    /**
     * One-sided RMA get: pull [rmem.addr, +len) into local [laddr, +len).
     * No control traffic follows -- the ArgoDSM-style direct READ.
     * @return a request id; poll UcxWorker::completed().
     */
    std::uint64_t get(std::uint64_t laddr, const RemoteMemory& rmem,
                      std::uint32_t len);

    /** One-sided RMA put: push local [laddr, +len) to the remote. */
    std::uint64_t put(std::uint64_t laddr, const RemoteMemory& rmem,
                      std::uint32_t len);

    /** The QP carrying this endpoint's traffic (for stats/tests). */
    verbs::QueuePair& qp() { return qp_; }

  private:
    friend class UcxWorker;
    UcxWorker* owner_ = nullptr;
    UcxWorker* peer_ = nullptr;
    verbs::QueuePair qp_;       ///< local -> peer control + data
    std::size_t index_ = 0;     ///< endpoint slot in the owner
};

/**
 * A communication worker bound to one node.
 */
class UcxWorker
{
  public:
    UcxWorker(Cluster& cluster, Node& node, UcxConfig config = {});
    ~UcxWorker();

    UcxWorker(const UcxWorker&) = delete;
    UcxWorker& operator=(const UcxWorker&) = delete;

    /** Connect to a peer worker (creates both directions). */
    UcxEndpoint& connectTo(UcxWorker& peer);

    /**
     * Nonblocking tagged receive into [addr, addr+maxlen). Matches
     * eager and rendezvous arrivals from any connected peer.
     * @return a request id; poll completed().
     */
    std::uint64_t tagRecv(std::uint64_t tag, std::uint64_t addr,
                          std::uint32_t maxlen);

    /**
     * Expose a local range for one-sided access by peers (registers it
     * through the memory domain and returns the descriptor to share).
     */
    RemoteMemory expose(std::uint64_t addr, std::uint32_t len);

    /** Whether a request (send or recv) has completed. */
    bool completed(std::uint64_t request) const;

    /** Bytes delivered for a completed receive request. */
    std::uint32_t receivedBytes(std::uint64_t request) const;

    Node& node() { return node_; }
    const UcxStats& stats() const { return stats_; }
    const UcxConfig& config() const { return config_; }

  private:
    friend class UcxEndpoint;

    struct PostedRecv
    {
        std::uint64_t request = 0;
        std::uint64_t tag = 0;
        std::uint64_t addr = 0;
        std::uint32_t maxlen = 0;
        std::uint32_t lkey = 0;  ///< pre-acquired landing-buffer key
    };

    struct RecvSlot
    {
        verbs::QueuePair qp;
        std::uint64_t addr = 0;
        std::uint32_t lkey = 0;
    };

    struct UnexpectedMessage
    {
        std::uint64_t tag = 0;
        bool rendezvous = false;
        std::vector<std::uint8_t> payload;  ///< eager data
        // Rendezvous descriptor:
        std::uint64_t raddr = 0;
        std::uint32_t rkey = 0;
        std::uint32_t len = 0;
        std::uint64_t senderRequest = 0;
        UcxEndpoint* replyEp = nullptr;
    };

    /** @{ Control message types. */
    static constexpr std::uint8_t msgEager = 1;
    static constexpr std::uint8_t msgRts = 2;
    static constexpr std::uint8_t msgFin = 3;
    /** @} */

    /** Control slot size: header plus the largest eager payload. */
    std::uint64_t slotBytes() const;

    /** Create a one-way endpoint toward @p peer. */
    UcxEndpoint& makeEndpoint(UcxWorker& peer);

    /** Post control RECV slots on an inbound QP. */
    void armInbound(verbs::QueuePair inbound);

    /** Look up (or create) the memory handle covering a user range. */
    verbs::MemoryRegion& domainMr(std::uint64_t addr, std::uint32_t len);

    /** Deliver a matched arrival into a posted receive. */
    void deliver(const PostedRecv& recv, const UnexpectedMessage& msg);

    /** Send one control message (header + optional payload) on @p ep. */
    void sendCtrl(UcxEndpoint& ep, std::uint8_t type, std::uint64_t tag,
                  std::uint64_t a, std::uint64_t b, std::uint32_t len,
                  const std::uint8_t* payload, std::uint32_t payload_len);

    /** RQ completion: dispatch an inbound control message. */
    void onCtrlArrival(const verbs::WorkCompletion& wc);

    /** Completion of a rendezvous READ posted by this worker. */
    void onReadCompletion(const verbs::WorkCompletion& wc);

    /** Try to match an arrival against posted receives. */
    void matchOrQueue(UnexpectedMessage&& msg);

    /** Start the rendezvous pull for a matched descriptor. */
    void startRendezvous(const PostedRecv& recv,
                         const UnexpectedMessage& rts);

    Cluster& cluster_;
    Node& node_;
    UcxConfig config_;

    verbs::CompletionQueue* cq_ = nullptr;
    std::vector<std::unique_ptr<UcxEndpoint>> endpoints_;
    /** Reverse map: inbound qpn -> endpoint used for replies. */
    std::map<std::uint32_t, UcxEndpoint*> byRemoteQpn_;

    /** Control buffers (pinned). */
    std::uint64_t ctrlSendBuf_ = 0;
    verbs::MemoryRegion* ctrlSendMr_ = nullptr;
    std::map<std::uint64_t, RecvSlot> recvSlots_;
    std::uint64_t nextRecvSlot_ = 1;
    std::uint64_t ctrlSendSeq_ = 1;

    /** Outstanding user sends: request -> length. */
    std::map<std::uint64_t, std::uint32_t> eagerSendLens_;
    std::map<std::uint64_t, std::uint32_t> rendezvousSendLens_;
    /** Outstanding one-sided RMA requests: request -> length. */
    std::map<std::uint64_t, std::uint32_t> rmaLens_;

    /** Memory domain. */
    verbs::MemoryRegion* implicitMr_ = nullptr;
    std::unique_ptr<regcache::RegistrationCache> regCache_;

    std::uint64_t nextRequest_ = 1;
    std::map<std::uint64_t, std::uint32_t> completedRequests_;
    std::deque<PostedRecv> postedRecvs_;
    std::deque<UnexpectedMessage> unexpected_;
    /** READ wr_id -> (recv request, fin target, sender request, len). */
    struct PendingRead
    {
        std::uint64_t recvRequest = 0;
        UcxEndpoint* replyEp = nullptr;
        std::uint64_t senderRequest = 0;
        std::uint32_t len = 0;
    };
    std::map<std::uint64_t, PendingRead> pendingReads_;

    UcxStats stats_;
};

} // namespace ucxlite
} // namespace ibsim

#endif // IBSIM_UCXLITE_UCX_LITE_HH
