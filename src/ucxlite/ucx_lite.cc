#include "ucxlite/ucx_lite.hh"

#include <cassert>
#include <cstring>

namespace ibsim {
namespace ucxlite {

namespace {

/** Control wire header: type, tag, three 64-bit fields, length. */
constexpr std::uint32_t headerBytes = 1 + 8 + 8 + 8 + 8 + 4;

/** wr_id namespaces on the shared CQ. */
constexpr std::uint64_t ctrlWrBase = 1ull << 62;
constexpr std::uint64_t readWrBase = 1ull << 63;

std::uint64_t
get64(const std::vector<std::uint8_t>& b, std::size_t off)
{
    std::uint64_t v = 0;
    std::memcpy(&v, b.data() + off, 8);
    return v;
}

std::uint32_t
get32(const std::vector<std::uint8_t>& b, std::size_t off)
{
    std::uint32_t v = 0;
    std::memcpy(&v, b.data() + off, 4);
    return v;
}

} // namespace

std::uint64_t
UcxEndpoint::tagSend(std::uint64_t tag, std::uint64_t addr,
                     std::uint32_t len)
{
    UcxWorker& w = *owner_;
    const std::uint64_t request = w.nextRequest_++;

    if (len <= w.config_.eagerThreshold) {
        // Eager: the payload rides the control SEND; the request
        // completes when the SEND does (buffer reusable).
        ++w.stats_.eagerSends;
        const auto payload = w.node_.memory().read(addr, len);
        w.sendCtrl(*this, UcxWorker::msgEager, tag, request, 0, len,
                   payload.data(), len);
        return request;
    }

    // Rendezvous: advertise the source buffer; the receiver pulls it with
    // an RDMA READ and confirms with FIN. Registration goes through the
    // memory domain: implicit ODP (cold pages fault when the READ lands)
    // or the pin-down cache. The rkey and the sender request id share f2
    // (requests stay far below 2^32).
    ++w.stats_.rendezvousSends;
    verbs::MemoryRegion& mr = w.domainMr(addr, len);
    const std::uint64_t f2 =
        (static_cast<std::uint64_t>(mr.rkey()) << 32) |
        (request & 0xffffffffull);
    w.rendezvousSendLens_[request] = len;
    w.sendCtrl(*this, UcxWorker::msgRts, tag, addr, f2, len, nullptr, 0);
    return request;
}

std::uint64_t
UcxEndpoint::get(std::uint64_t laddr, const RemoteMemory& rmem,
                 std::uint32_t len)
{
    UcxWorker& w = *owner_;
    const std::uint64_t request = w.nextRequest_++;
    verbs::MemoryRegion& mr = w.domainMr(laddr, len);
    w.rmaLens_[request] = len;
    qp_.postRead(laddr, mr.lkey(), rmem.addr, rmem.rkey, len, request);
    return request;
}

std::uint64_t
UcxEndpoint::put(std::uint64_t laddr, const RemoteMemory& rmem,
                 std::uint32_t len)
{
    UcxWorker& w = *owner_;
    const std::uint64_t request = w.nextRequest_++;
    verbs::MemoryRegion& mr = w.domainMr(laddr, len);
    w.rmaLens_[request] = len;
    qp_.postWrite(laddr, mr.lkey(), rmem.addr, rmem.rkey, len, request);
    return request;
}

UcxWorker::UcxWorker(Cluster& cluster, Node& node, UcxConfig config)
    : cluster_(cluster), node_(node), config_(config)
{
    cq_ = &node_.createCq();
    cq_->setListener([this](const verbs::WorkCompletion& wc) {
        if (wc.opcode == verbs::WrOpcode::Recv) {
            onCtrlArrival(wc);
        } else if (wc.opcode == verbs::WrOpcode::Read &&
                   wc.wrId >= readWrBase) {
            onReadCompletion(wc);
        } else if (wc.opcode == verbs::WrOpcode::Send &&
                   wc.wrId < ctrlWrBase && wc.ok()) {
            // Eager send completion.
            auto it = eagerSendLens_.find(wc.wrId);
            if (it != eagerSendLens_.end()) {
                completedRequests_[wc.wrId] = it->second;
                eagerSendLens_.erase(it);
            }
        } else if ((wc.opcode == verbs::WrOpcode::Read ||
                    wc.opcode == verbs::WrOpcode::Write) &&
                   wc.wrId < ctrlWrBase && wc.ok()) {
            // One-sided RMA completion.
            auto it = rmaLens_.find(wc.wrId);
            if (it != rmaLens_.end()) {
                completedRequests_[wc.wrId] = it->second;
                rmaLens_.erase(it);
            }
        }
    });

    // A ring of send slots: sends queued behind a paused QP must keep
    // their bytes until they actually leave the wire.
    const std::uint64_t slot = slotBytes();
    ctrlSendBuf_ = node_.alloc(slot * config_.ctrlSlots);
    node_.touch(ctrlSendBuf_, slot * config_.ctrlSlots);
    ctrlSendMr_ = &node_.registerMemory(ctrlSendBuf_,
                                        slot * config_.ctrlSlots,
                                        verbs::AccessFlags::pinned());

    if (!config_.useOdp) {
        regcache::RegCacheConfig cache_config;
        cache_config.capacityBytes = 0;  // unbounded for the domain
        regCache_ = std::make_unique<regcache::RegistrationCache>(
            node_, cluster_.events(), cache_config);
    }
}

UcxWorker::~UcxWorker() = default;

std::uint64_t
UcxWorker::slotBytes() const
{
    return headerBytes + config_.eagerThreshold;
}

UcxEndpoint&
UcxWorker::connectTo(UcxWorker& peer)
{
    // Create both directions so either side can initiate traffic.
    auto& forward = makeEndpoint(peer);
    peer.makeEndpoint(*this);
    return forward;
}

UcxEndpoint&
UcxWorker::makeEndpoint(UcxWorker& peer)
{
    auto ep = std::make_unique<UcxEndpoint>();
    ep->owner_ = this;
    ep->peer_ = &peer;
    ep->index_ = endpoints_.size();

    auto pair = cluster_.connectRc(node_, *cq_, peer.node_, *peer.cq_,
                                   config_.qpConfig);
    ep->qp_ = pair.first;
    verbs::QueuePair inbound = pair.second;  // lives on the peer

    // The peer hears this endpoint's traffic on `inbound`: it posts the
    // control RECV slots there and maps the qpn to its reply endpoint
    // (fixed up below once the reverse endpoint exists).
    peer.armInbound(inbound);

    endpoints_.push_back(std::move(ep));
    UcxEndpoint& ref = *endpoints_.back();

    // Fix up reply routing on both sides where possible.
    peer.byRemoteQpn_[inbound.qpn()] = nullptr;  // placeholder
    // If the peer already has an endpoint back to us, bind it.
    for (auto& pep : peer.endpoints_) {
        if (pep->peer_ == this)
            peer.byRemoteQpn_[inbound.qpn()] = pep.get();
    }
    // And bind our own pending placeholders toward this peer.
    for (auto& [qpn, slot] : byRemoteQpn_) {
        if (slot == nullptr)
            slot = &ref;
    }
    return ref;
}

void
UcxWorker::armInbound(verbs::QueuePair inbound)
{
    const std::uint64_t slot = slotBytes();
    const std::uint64_t block = node_.alloc(slot * config_.ctrlSlots);
    node_.touch(block, slot * config_.ctrlSlots);
    auto& mr = node_.registerMemory(block, slot * config_.ctrlSlots,
                                    verbs::AccessFlags::pinned());
    for (std::size_t i = 0; i < config_.ctrlSlots; ++i) {
        const std::uint64_t wr_id = nextRecvSlot_++;
        RecvSlot rs;
        rs.qp = inbound;
        rs.addr = block + i * slot;
        rs.lkey = mr.lkey();
        recvSlots_[wr_id] = rs;
        inbound.postRecv(rs.addr, rs.lkey, static_cast<std::uint32_t>(slot),
                         wr_id);
    }
}

verbs::MemoryRegion&
UcxWorker::domainMr(std::uint64_t addr, std::uint32_t len)
{
    if (config_.useOdp) {
        if (!implicitMr_)
            implicitMr_ = &node_.registerImplicitOdp();
        return *implicitMr_;
    }
    return regCache_->acquire(addr, len);
}

void
UcxWorker::sendCtrl(UcxEndpoint& ep, std::uint8_t type, std::uint64_t tag,
                    std::uint64_t f1, std::uint64_t f2, std::uint32_t len,
                    const std::uint8_t* payload,
                    std::uint32_t payload_len)
{
    std::vector<std::uint8_t> wire(headerBytes + payload_len);
    wire[0] = type;
    std::memcpy(wire.data() + 1, &tag, 8);
    std::memcpy(wire.data() + 9, &f1, 8);
    std::memcpy(wire.data() + 17, &f2, 8);
    const std::uint64_t f3 = 0;  // reserved
    std::memcpy(wire.data() + 25, &f3, 8);
    std::memcpy(wire.data() + 33, &len, 4);
    if (payload_len > 0)
        std::memcpy(wire.data() + headerBytes, payload, payload_len);

    const std::uint64_t slot_addr =
        ctrlSendBuf_ +
        (ctrlSendSeq_ % config_.ctrlSlots) * slotBytes();
    node_.memory().write(slot_addr, wire);
    std::uint64_t wr_id = ctrlWrBase + ctrlSendSeq_++;
    if (type == msgEager) {
        // Eager sends complete the user request at the SEND CQE.
        wr_id = f1;  // the request id
        eagerSendLens_[wr_id] = len;
    }
    ep.qp_.postSend(slot_addr, ctrlSendMr_->lkey(),
                    static_cast<std::uint32_t>(wire.size()), wr_id);
}

RemoteMemory
UcxWorker::expose(std::uint64_t addr, std::uint32_t len)
{
    verbs::MemoryRegion& mr = domainMr(addr, len);
    RemoteMemory rmem;
    rmem.addr = addr;
    rmem.rkey = mr.rkey();
    rmem.len = len;
    return rmem;
}

std::uint64_t
UcxWorker::tagRecv(std::uint64_t tag, std::uint64_t addr,
                   std::uint32_t maxlen)
{
    const std::uint64_t request = nextRequest_++;

    // Pre-acquire the landing buffer's memory handle at harness level
    // (the pin-down cache charges registration time here; implicit ODP
    // is free until the pages fault).
    verbs::MemoryRegion& mr = domainMr(addr, maxlen);

    // Check the unexpected queue first.
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
        if (it->tag != tag)
            continue;
        UnexpectedMessage msg = std::move(*it);
        unexpected_.erase(it);
        PostedRecv recv;
        recv.request = request;
        recv.tag = tag;
        recv.addr = addr;
        recv.maxlen = maxlen;
        recv.lkey = mr.lkey();
        deliver(recv, msg);
        return request;
    }

    PostedRecv recv;
    recv.request = request;
    recv.tag = tag;
    recv.addr = addr;
    recv.maxlen = maxlen;
    recv.lkey = mr.lkey();
    postedRecvs_.push_back(recv);
    return request;
}

void
UcxWorker::onCtrlArrival(const verbs::WorkCompletion& wc)
{
    auto slot_it = recvSlots_.find(wc.wrId);
    if (slot_it == recvSlots_.end() || !wc.ok())
        return;
    RecvSlot slot = slot_it->second;
    const auto bytes = node_.memory().read(slot.addr, wc.byteLen);
    // Repost immediately.
    slot.qp.postRecv(slot.addr, slot.lkey,
                     static_cast<std::uint32_t>(slotBytes()), wc.wrId);

    if (bytes.size() < headerBytes)
        return;
    const std::uint8_t type = bytes[0];
    const std::uint64_t tag = get64(bytes, 1);
    const std::uint64_t f1 = get64(bytes, 9);
    const std::uint64_t f2 = get64(bytes, 17);
    const std::uint32_t len = get32(bytes, 33);

    if (type == msgFin) {
        // f1 = the sender-side request id being confirmed.
        completedRequests_[f1] = len;
        rendezvousSendLens_.erase(f1);
        return;
    }

    UnexpectedMessage msg;
    msg.tag = tag;
    msg.len = len;
    msg.replyEp = byRemoteQpn_[wc.qpn];
    if (type == msgEager) {
        msg.rendezvous = false;
        msg.payload.assign(bytes.begin() + headerBytes,
                           bytes.begin() + headerBytes + len);
    } else {  // msgRts
        msg.rendezvous = true;
        msg.raddr = f1;
        msg.rkey = static_cast<std::uint32_t>(f2 >> 32);
        msg.senderRequest = f2 & 0xffffffffull;
    }
    matchOrQueue(std::move(msg));
}

void
UcxWorker::matchOrQueue(UnexpectedMessage&& msg)
{
    for (auto it = postedRecvs_.begin(); it != postedRecvs_.end(); ++it) {
        if (it->tag != msg.tag)
            continue;
        PostedRecv recv = *it;
        postedRecvs_.erase(it);
        deliver(recv, msg);
        return;
    }
    ++stats_.unexpectedMessages;
    unexpected_.push_back(std::move(msg));
}

void
UcxWorker::deliver(const PostedRecv& recv, const UnexpectedMessage& msg)
{
    assert(msg.len <= recv.maxlen && "receive buffer too small");
    if (!msg.rendezvous) {
        node_.memory().write(recv.addr, msg.payload);
        completedRequests_[recv.request] = msg.len;
        return;
    }
    startRendezvous(recv, msg);
}

void
UcxWorker::startRendezvous(const PostedRecv& recv,
                           const UnexpectedMessage& rts)
{
    ++stats_.rendezvousReads;
    assert(rts.replyEp && "no reply endpoint for rendezvous");
    PendingRead pending;
    pending.recvRequest = recv.request;
    pending.replyEp = rts.replyEp;
    pending.senderRequest = rts.senderRequest;
    pending.len = rts.len;
    const std::uint64_t wr_id = readWrBase + recv.request;
    pendingReads_[wr_id] = pending;
    // The pull: an RDMA READ from the sender's advertised buffer into the
    // user's landing buffer. Under implicit ODP both ends may fault.
    rts.replyEp->qp_.postRead(recv.addr, recv.lkey, rts.raddr, rts.rkey,
                              rts.len, wr_id);
}

void
UcxWorker::onReadCompletion(const verbs::WorkCompletion& wc)
{
    auto it = pendingReads_.find(wc.wrId);
    if (it == pendingReads_.end())
        return;
    PendingRead pending = it->second;
    pendingReads_.erase(it);
    if (!wc.ok())
        return;
    completedRequests_[pending.recvRequest] = pending.len;
    // FIN back to the sender: the READ-then-SEND shape of Sec. VII-A.
    sendCtrl(*pending.replyEp, msgFin, 0, pending.senderRequest, 0,
             pending.len, nullptr, 0);
}

bool
UcxWorker::completed(std::uint64_t request) const
{
    return completedRequests_.count(request) > 0;
}

std::uint32_t
UcxWorker::receivedBytes(std::uint64_t request) const
{
    auto it = completedRequests_.find(request);
    return it == completedRequests_.end() ? 0 : it->second;
}

} // namespace ucxlite
} // namespace ibsim
