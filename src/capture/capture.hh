/**
 * @file
 * Packet capture — the simulator's ibdump.
 *
 * A PacketCapture taps the fabric and records every packet (including ones
 * the fabric drops), timestamped in virtual time. The paper's entire
 * reverse-engineering methodology rests on reading such captures
 * (Figs. 1, 5, 8) and counting packets (Fig. 9b); the trace formatter and
 * analysis helpers reproduce both uses.
 */

#ifndef IBSIM_CAPTURE_CAPTURE_HH
#define IBSIM_CAPTURE_CAPTURE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/fabric.hh"
#include "net/packet.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace capture {

/** One captured packet. */
struct CaptureEntry
{
    Time when;
    net::Packet packet;
    bool dropped = false;
};

/**
 * Records fabric traffic.
 */
class PacketCapture
{
  public:
    /** Create a capture and attach it to @p fabric. */
    explicit PacketCapture(net::Fabric& fabric);

    PacketCapture(const PacketCapture&) = delete;
    PacketCapture& operator=(const PacketCapture&) = delete;

    /** Pause/resume recording (the tap stays installed). */
    void setRecording(bool on) { recording_ = on; }
    bool recording() const { return recording_; }

    /** Drop everything recorded so far. */
    void clear() { entries_.clear(); }

    const std::vector<CaptureEntry>& entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }

    /** Entries matching a predicate. */
    std::vector<const CaptureEntry*>
    filter(const std::function<bool(const CaptureEntry&)>& pred) const;

    /** Entries on one QP connection (either direction). */
    std::vector<const CaptureEntry*>
    connection(std::uint32_t qpn_a, std::uint32_t qpn_b) const;

  private:
    std::vector<CaptureEntry> entries_;
    bool recording_ = true;
};

} // namespace capture
} // namespace ibsim

#endif // IBSIM_CAPTURE_CAPTURE_HH
