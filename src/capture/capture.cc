#include "capture/capture.hh"

namespace ibsim {
namespace capture {

PacketCapture::PacketCapture(net::Fabric& fabric)
{
    fabric.addTap([this, &fabric](const net::Packet& pkt, bool dropped) {
        if (!recording_)
            return;
        CaptureEntry entry;
        entry.when = fabric.events().now();
        entry.packet = pkt;
        // Drop the payload bytes: captures of flood runs hold hundreds of
        // thousands of packets and the analysis only needs headers.
        entry.packet.payload.clear();
        entry.dropped = dropped;
        entries_.push_back(std::move(entry));
    });
}

std::vector<const CaptureEntry*>
PacketCapture::filter(
    const std::function<bool(const CaptureEntry&)>& pred) const
{
    std::vector<const CaptureEntry*> out;
    for (const auto& e : entries_) {
        if (pred(e))
            out.push_back(&e);
    }
    return out;
}

std::vector<const CaptureEntry*>
PacketCapture::connection(std::uint32_t qpn_a, std::uint32_t qpn_b) const
{
    return filter([qpn_a, qpn_b](const CaptureEntry& e) {
        const auto& p = e.packet;
        return (p.srcQpn == qpn_a && p.dstQpn == qpn_b) ||
               (p.srcQpn == qpn_b && p.dstQpn == qpn_a);
    });
}

} // namespace capture
} // namespace ibsim
