/**
 * @file
 * Human-readable rendering of packet captures.
 *
 * Renders captures the way the paper presents them: either a flat dump
 * (timestamp + packet line) or a two-column client/server "workflow"
 * diagram like Figs. 1, 5 and 8, where each packet is drawn on the side
 * that sent it.
 */

#ifndef IBSIM_CAPTURE_TRACE_FORMAT_HH
#define IBSIM_CAPTURE_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "capture/capture.hh"

namespace ibsim {
namespace capture {

/** Flat dump: one line per packet. */
std::string formatFlat(const std::vector<const CaptureEntry*>& entries);
std::string formatFlat(const PacketCapture& capture);

/**
 * Two-column workflow diagram. Packets sent by @p client_lid appear in the
 * left column with "-->" arrows; packets from the other side on the right
 * with "<--" arrows, matching the figures' client/server layout.
 */
std::string formatWorkflow(const std::vector<const CaptureEntry*>& entries,
                           std::uint16_t client_lid);
std::string formatWorkflow(const PacketCapture& capture,
                           std::uint16_t client_lid);

} // namespace capture
} // namespace ibsim

#endif // IBSIM_CAPTURE_TRACE_FORMAT_HH
