#include "capture/trace_format.hh"

#include <cstdio>

namespace ibsim {
namespace capture {

namespace {

std::vector<const CaptureEntry*>
all(const PacketCapture& capture)
{
    std::vector<const CaptureEntry*> out;
    out.reserve(capture.size());
    for (const auto& e : capture.entries())
        out.push_back(&e);
    return out;
}

} // namespace

std::string
formatFlat(const std::vector<const CaptureEntry*>& entries)
{
    std::string out;
    char buf[64];
    for (const auto* e : entries) {
        std::snprintf(buf, sizeof(buf), "%14s  ", e->when.str().c_str());
        out += buf;
        out += e->packet.str();
        if (e->dropped)
            out += "  ** LOST **";
        out += '\n';
    }
    return out;
}

std::string
formatFlat(const PacketCapture& capture)
{
    return formatFlat(all(capture));
}

std::string
formatWorkflow(const std::vector<const CaptureEntry*>& entries,
               std::uint16_t client_lid)
{
    std::string out;
    out += "      time      client                                        "
           "server\n";
    out += "  ------------  ------------------------------------------    "
           "------------------------------------------\n";
    char buf[256];
    for (const auto* e : entries) {
        const auto& p = e->packet;
        std::string label = opcodeName(p.op);
        char detail[96];
        std::snprintf(detail, sizeof(detail), " psn=%u", p.psn);
        label += detail;
        if (p.op == net::Opcode::Nak)
            label += std::string(" (") + nakName(p.nak) + ")";
        if (p.op == net::Opcode::RnrNak)
            label += " delay=" + p.rnrDelay.str();
        if (p.retransmission)
            label += " [rexmit]";
        if (p.dammed)
            label += " [dammed]";
        if (e->dropped)
            label += " ** LOST **";

        if (p.srcLid == client_lid) {
            std::snprintf(buf, sizeof(buf), "  %12s  %-42s -->\n",
                          e->when.str().c_str(), label.c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "  %12s  %42s <-- %s\n",
                          e->when.str().c_str(), "", label.c_str());
        }
        out += buf;
    }
    return out;
}

std::string
formatWorkflow(const PacketCapture& capture, std::uint16_t client_lid)
{
    return formatWorkflow(all(capture), client_lid);
}

} // namespace capture
} // namespace ibsim
