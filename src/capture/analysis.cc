#include "capture/analysis.hh"

#include <cstdio>

namespace ibsim {
namespace capture {

CaptureSummary
summarize(const std::vector<const CaptureEntry*>& entries)
{
    CaptureSummary s;
    const CaptureEntry* prev = nullptr;
    for (const auto* e : entries) {
        ++s.totalPackets;
        if (e->dropped)
            ++s.droppedPackets;
        if (e->packet.retransmission)
            ++s.retransmissions;
        if (e->packet.op == net::Opcode::RnrNak)
            ++s.rnrNaks;
        if (e->packet.op == net::Opcode::Nak &&
            e->packet.nak == net::NakCode::PsnSequenceError)
            ++s.seqNaks;
        ++s.perOpcode[e->packet.op];

        if (prev) {
            const Time gap = e->when - prev->when;
            if (gap > s.largestGap) {
                s.largestGap = gap;
                s.largestGapStart = prev->when;
            }
        }
        prev = e;
    }
    return s;
}

CaptureSummary
summarize(const PacketCapture& capture)
{
    std::vector<const CaptureEntry*> all;
    all.reserve(capture.size());
    for (const auto& e : capture.entries())
        all.push_back(&e);
    return summarize(all);
}

std::string
CaptureSummary::str() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "packets=%llu dropped=%llu rexmit=%llu rnr_nak=%llu "
                  "seq_nak=%llu largest_gap=%s\n",
                  static_cast<unsigned long long>(totalPackets),
                  static_cast<unsigned long long>(droppedPackets),
                  static_cast<unsigned long long>(retransmissions),
                  static_cast<unsigned long long>(rnrNaks),
                  static_cast<unsigned long long>(seqNaks),
                  largestGap.str().c_str());
    out += buf;
    for (const auto& [op, count] : perOpcode) {
        std::snprintf(buf, sizeof(buf), "  %-10s %llu\n", opcodeName(op),
                      static_cast<unsigned long long>(count));
        out += buf;
    }
    return out;
}

} // namespace capture
} // namespace ibsim
