/**
 * @file
 * Capture analysis helpers.
 *
 * Aggregates a capture into the quantities the paper derives from ibdump
 * output: packet counts per opcode, retransmission counts, NAK breakdowns,
 * and the largest silent gap on a connection (the signature of a transport
 * timeout).
 */

#ifndef IBSIM_CAPTURE_ANALYSIS_HH
#define IBSIM_CAPTURE_ANALYSIS_HH

#include <cstdint>
#include <map>
#include <string>

#include "capture/capture.hh"

namespace ibsim {
namespace capture {

/** Aggregate statistics of a capture (or a filtered slice of one). */
struct CaptureSummary
{
    std::uint64_t totalPackets = 0;
    std::uint64_t droppedPackets = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t rnrNaks = 0;
    std::uint64_t seqNaks = 0;
    std::map<net::Opcode, std::uint64_t> perOpcode;

    /** Largest gap between consecutive packets. */
    Time largestGap;
    /** Start time of that gap. */
    Time largestGapStart;

    std::string str() const;
};

/** Summarize a full capture. */
CaptureSummary summarize(const PacketCapture& capture);

/** Summarize a filtered slice. */
CaptureSummary summarize(const std::vector<const CaptureEntry*>& entries);

} // namespace capture
} // namespace ibsim

#endif // IBSIM_CAPTURE_ANALYSIS_HH
