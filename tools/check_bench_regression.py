#!/usr/bin/env python3
"""Soft wall-clock regression gate for the bench trend files.

Compares a freshly produced JSONL bench file (the same format
exp::TrialRunner emits, one row per sweep cell) against a committed
baseline file, matching rows by (bench, params) and comparing the mean of
the wall-clock metrics (ns_per_item / ns_per_packet). A cell that got more
than --threshold slower than its most recent baseline row fails the check
and is listed in a diff table.

The check is soft by design: wall-clock numbers move with the machine, so
the threshold defaults to a generous 25% and only the named nanosecond
metrics are compared — counts, violation totals and derived rates are
trend data, not gates.

Usage:
    tools/check_bench_regression.py --baseline BENCH_simcore.json \
        --fresh fresh.jsonl [--threshold 1.25]
"""

import argparse
import json
import sys

WALL_CLOCK_METRICS = ("ns_per_item", "ns_per_packet")


def load_rows(path):
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(
                    f"{path}:{line_number}: not JSON lines: {err}"
                )
    return rows


def cell_key(row):
    params = row.get("params", {})
    return (
        row.get("bench", "?"),
        tuple(sorted((str(k), str(v)) for k, v in params.items())),
    )


def wall_clock_means(row):
    """The comparable {metric: mean} subset of one row."""
    out = {}
    for name, stats in row.get("metrics", {}).items():
        if name in WALL_CLOCK_METRICS and "mean" in stats:
            out[name] = float(stats["mean"])
    return out


def latest_by_key(rows):
    """Most recent row per cell (trend files append, so last line wins)."""
    latest = {}
    for row in rows:
        latest[cell_key(row)] = row
    return latest


def format_key(key):
    bench, params = key
    rendered = " ".join(f"{k}={v}" for k, v in params)
    return f"{bench}[{rendered}]" if rendered else bench


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed trend file (JSON lines)")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced bench output (JSON lines)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail ratio: fresh/baseline mean above this "
                             "is a regression (default 1.25 = +25%%)")
    args = parser.parse_args()

    baseline = latest_by_key(load_rows(args.baseline))
    fresh = latest_by_key(load_rows(args.fresh))

    compared = 0
    regressions = []
    for key, fresh_row in sorted(fresh.items()):
        base_row = baseline.get(key)
        if base_row is None:
            continue  # new cell: becomes a baseline, nothing to gate
        base_means = wall_clock_means(base_row)
        for metric, fresh_mean in wall_clock_means(fresh_row).items():
            base_mean = base_means.get(metric)
            if base_mean is None or base_mean <= 0:
                continue
            compared += 1
            ratio = fresh_mean / base_mean
            if ratio > args.threshold:
                regressions.append(
                    (format_key(key), metric, base_mean, fresh_mean, ratio)
                )

    print(f"bench regression check: {compared} wall-clock metric(s) "
          f"compared, threshold x{args.threshold:.2f}")
    if not regressions:
        print("OK: no cell regressed beyond the threshold")
        return 0

    header = (f"{'cell':<50} {'metric':<14} {'baseline':>12} "
              f"{'fresh':>12} {'ratio':>7}")
    print()
    print(header)
    print("-" * len(header))
    for name, metric, base_mean, fresh_mean, ratio in regressions:
        print(f"{name:<50} {metric:<14} {base_mean:>12.1f} "
              f"{fresh_mean:>12.1f} {ratio:>6.2f}x")
    print()
    print(f"FAIL: {len(regressions)} cell(s) regressed more than "
          f"{(args.threshold - 1) * 100:.0f}% — if this slowdown is "
          f"expected, refresh the baseline rows in the committed file")
    return 1


if __name__ == "__main__":
    sys.exit(main())
