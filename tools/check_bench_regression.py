#!/usr/bin/env python3
"""Soft wall-clock regression gate for the bench trend files.

Compares a freshly produced JSONL bench file (the same format
exp::TrialRunner emits, one row per sweep cell) against a committed
baseline file, matching rows by (bench, params) and comparing the mean of
the wall-clock metrics (ns_per_item / ns_per_packet). The verdict is per
bench: the geometric mean of a bench's cell ratios (fresh/baseline) above
--threshold fails the check. Individual cells — whose sub-millisecond
walls swing far more than 25% with scheduler noise, in both directions —
are printed as context but not gated; a real regression moves a whole
bench's cells together.

The check is soft by design: wall-clock numbers move with the machine, so
the threshold defaults to a generous 25% and only the named nanosecond
metrics are compared — counts, violation totals and derived rates are
trend data, not gates.

Fresh cells with no baseline row fail soft-but-loud: each is printed as a
WARN line and the check exits nonzero so CI surfaces them, without
claiming a perf regression. Pass --allow-new when the new cells are
intentional (they become baselines once the trend file is refreshed).

Metrics whose BASELINE stddev/mean exceeds --noise-threshold (default
0.35) are not gated at all: such a baseline cannot distinguish a real
regression from its own scatter. Each skip is printed as a WARN line
(but does not fail the check) — the fix is more trials in the bench and
a refreshed baseline, not a bigger threshold.

Rows swept over a `jobs` param additionally get a derived
`speedup_vs_seq` report: each jobs != 1 cell's wall-clock mean compared
against the jobs = 1 cell sharing the bench and every other param —
the sequential-reference speedup of the sharded kernel. Any derived
speedup below 1.0 means adding workers made the simulation SLOWER than
the inline jobs = 1 reference; such rows are flagged as WARN lines and
the check exits nonzero. Pass --allow-slowdown when that is expected
(e.g. a single-hardware-thread machine, where every jobs > 1 run only
adds synchronization cost).

Usage:
    tools/check_bench_regression.py --baseline BENCH_simcore.json \
        --fresh fresh.jsonl [--threshold 1.25] [--allow-new] \
        [--allow-slowdown]
"""

import argparse
import json
import math
import sys

WALL_CLOCK_METRICS = ("ns_per_item", "ns_per_packet")


def load_rows(path):
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(
                    f"{path}:{line_number}: not JSON lines: {err}"
                )
    return rows


def cell_key(row):
    params = row.get("params", {})
    return (
        row.get("bench", "?"),
        tuple(sorted((str(k), str(v)) for k, v in params.items())),
    )


def wall_clock_means(row):
    """The comparable {metric: mean} subset of one row."""
    out = {}
    for name, stats in row.get("metrics", {}).items():
        if name in WALL_CLOCK_METRICS and "mean" in stats:
            out[name] = float(stats["mean"])
    return out


def noise_ratio(row, metric):
    """Baseline stddev/mean for one metric (0.0 when unavailable)."""
    stats = row.get("metrics", {}).get(metric, {})
    mean = float(stats.get("mean", 0) or 0)
    stddev = float(stats.get("stddev", 0) or 0)
    return stddev / mean if mean > 0 else 0.0


def latest_by_key(rows):
    """Most recent row per cell (trend files append, so last line wins)."""
    latest = {}
    for row in rows:
        latest[cell_key(row)] = row
    return latest


def format_key(key):
    bench, params = key
    rendered = " ".join(f"{k}={v}" for k, v in params)
    return f"{bench}[{rendered}]" if rendered else bench


def is_sequential(value):
    """True when a `jobs` param value names the jobs=1 reference cell."""
    try:
        return float(value) == 1.0
    except (TypeError, ValueError):
        return False


def speedup_rows(fresh):
    """Derive speedup_vs_seq: each jobs != 1 cell against the jobs = 1
    cell sharing the bench and every other param. Returns
    (cell name, metric, jobs, speedup) tuples."""
    by_rest = {}  # (bench, params sans jobs) -> {jobs value: row}
    for key, row in fresh.items():
        bench, params = key
        jobs = dict(params).get("jobs")
        if jobs is None:
            continue
        rest = tuple(kv for kv in params if kv[0] != "jobs")
        by_rest.setdefault((bench, rest), {})[jobs] = row
    out = []
    for (bench, rest), cells in sorted(by_rest.items()):
        seq = next((row for jobs, row in cells.items()
                    if is_sequential(jobs)), None)
        if seq is None:
            continue
        seq_means = wall_clock_means(seq)
        for jobs, row in sorted(cells.items(), key=lambda kv: kv[0]):
            if is_sequential(jobs):
                continue
            for metric, mean in wall_clock_means(row).items():
                if mean > 0 and seq_means.get(metric, 0) > 0:
                    out.append((format_key((bench, rest)), metric, jobs,
                                seq_means[metric] / mean))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed trend file (JSON lines)")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced bench output (JSON lines)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail ratio: fresh/baseline mean above this "
                             "is a regression (default 1.25 = +25%%)")
    parser.add_argument("--allow-new", action="store_true",
                        help="fresh cells missing from the baseline are "
                             "expected; list them but do not fail")
    parser.add_argument("--allow-slowdown", action="store_true",
                        help="derived speedup_vs_seq below 1.0 is "
                             "expected (e.g. single-core machines); "
                             "list such rows but do not fail")
    parser.add_argument("--noise-threshold", type=float, default=0.35,
                        help="skip gating a metric whose BASELINE "
                             "stddev/mean exceeds this (default 0.35): "
                             "a baseline that noisy cannot distinguish "
                             "a regression from a reroll. Skipped "
                             "metrics are listed as WARN lines — fix "
                             "the bench (more trials) rather than "
                             "raising this")
    args = parser.parse_args()

    baseline = latest_by_key(load_rows(args.baseline))
    fresh = latest_by_key(load_rows(args.fresh))

    compared = 0
    unmatched = []  # fresh cells with no baseline row
    noisy = []  # (cell name, metric, stddev/mean) skipped as ungateable
    per_cell = []  # (bench, cell name, metric, base, fresh, ratio)
    for key, fresh_row in sorted(fresh.items()):
        base_row = baseline.get(key)
        if base_row is None:
            # New cell: nothing to gate, but stay loud — a silently
            # skipped cell reads as "checked and fine" when it wasn't.
            unmatched.append(key)
            continue
        base_means = wall_clock_means(base_row)
        for metric, fresh_mean in wall_clock_means(fresh_row).items():
            base_mean = base_means.get(metric)
            if base_mean is None or base_mean <= 0:
                continue
            noise = noise_ratio(base_row, metric)
            if noise > args.noise_threshold:
                # A baseline this noisy gates nothing: any fresh draw
                # within its own scatter would trip (or mask) the
                # threshold. Skip it, loudly — silence would read as
                # "checked and fine".
                noisy.append((format_key(key), metric, noise))
                continue
            compared += 1
            per_cell.append((key[0], format_key(key), metric, base_mean,
                             fresh_mean, fresh_mean / base_mean))

    # Single sub-millisecond cells swing far more than 25% with machine
    # noise, and noise flips cells both ways while a real slowdown moves
    # a whole bench together — so the verdict is per-bench: the
    # geometric mean of the cell ratios must stay under the threshold.
    # Individual outlier cells are listed as context, not failures.
    by_bench = {}
    for bench, _, _, _, _, ratio in per_cell:
        by_bench.setdefault(bench, []).append(ratio)
    bench_ratio = {
        bench: math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        for bench, ratios in by_bench.items()
    }
    regressions = [(bench, ratio, len(by_bench[bench]))
                   for bench, ratio in sorted(bench_ratio.items())
                   if ratio > args.threshold]

    print(f"bench regression check: {compared} wall-clock metric(s) "
          f"across {len(by_bench)} bench(es), threshold "
          f"x{args.threshold:.2f} on the per-bench geometric mean")
    for bench, ratio in sorted(bench_ratio.items()):
        print(f"  {bench:<24} x{ratio:.2f} over {len(by_bench[bench])} "
              f"cell(s)")
    outliers = [c for c in per_cell if c[5] > args.threshold]
    if outliers:
        print()
        print("outlier cells (context, not gated individually):")
        for _, name, metric, base_mean, fresh_mean, ratio in outliers:
            print(f"  {name:<52} {metric:<14} {base_mean:>10.1f} -> "
                  f"{fresh_mean:>10.1f} {ratio:>6.2f}x")

    speedups = speedup_rows(fresh)
    slowdowns = []
    if speedups:
        print()
        print("speedup_vs_seq (derived from jobs=1 reference cells; "
              "rows below 1.0 fail\nunless --allow-slowdown):")
        for name, metric, jobs, speedup in speedups:
            print(f"  {name:<52} {metric:<14} jobs={jobs:<4} "
                  f"{speedup:>6.2f}x")
            if speedup < 1.0:
                slowdowns.append((name, metric, jobs, speedup))

    if slowdowns:
        print()
        for name, metric, jobs, speedup in slowdowns:
            print(f"WARN: {name} jobs={jobs} is SLOWER than the jobs=1 "
                  f"reference ({metric} speedup {speedup:.2f}x)")

    if noisy:
        print()
        for name, metric, noise in noisy:
            print(f"WARN: baseline for {name} {metric} is too noisy to "
                  f"gate (stddev/mean {noise:.2f} > "
                  f"{args.noise_threshold:.2f}); raise the bench's "
                  f"trial count and refresh the baseline")

    if unmatched:
        print()
        for key in unmatched:
            print(f"WARN: no baseline row for {format_key(key)}")
    print()

    status = 0
    if unmatched and not args.allow_new:
        print(f"FAIL: {len(unmatched)} fresh cell(s) have no baseline "
              f"row; append baselines to the committed file or pass "
              f"--allow-new if intentional")
        status = 1
    if slowdowns and not args.allow_slowdown:
        print(f"FAIL: {len(slowdowns)} jobs>1 cell(s) run slower than "
              f"their jobs=1 reference; the parallel kernel must not "
              f"lose to its own sequential mode — pass --allow-slowdown "
              f"if this machine cannot show a speedup (e.g. one core)")
        status = 1
    if not regressions:
        print("OK: no bench regressed beyond the threshold")
        return status

    for bench, ratio, cells in regressions:
        print(f"FAIL: {bench} regressed x{ratio:.2f} (geometric mean "
              f"over {cells} cell(s), threshold x{args.threshold:.2f})")
    print("if this slowdown is expected, refresh the baseline rows in "
          "the committed file")
    return 1


if __name__ == "__main__":
    sys.exit(main())
