/**
 * @file
 * odp_bench_cli — the multiplexed experiment runner.
 *
 * Suite mode runs any subset of the registered paper benches in one
 * process, sharing one RunContext (trial budget, thread pool, output
 * files):
 *
 *   odp_bench_cli --list
 *   odp_bench_cli --filter 'fig*' --jobs 8 --json results.jsonl
 *   odp_bench_cli fig4 fig6 ablation_workarounds --quick
 *
 * Explore mode is the paper's micro-benchmark (Fig. 3) with free
 * parameters, for probing the pitfall space beyond the canned benches:
 *
 *   odp_bench_cli explore --ops 2 --interval-us 1000 --mode both --trace
 *   odp_bench_cli explore --ops 128 --qps 128 --size 32 --interval-us 8 \
 *                 --mode client --cack 18 --detect
 *
 * (Explore mode is also entered implicitly when any of its flags is
 * given, so pre-harness command lines keep working.)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/suite.hh"
#include "capture/trace_format.hh"
#include "chaos/chaos_engine.hh"
#include "chaos/invariant_monitor.hh"
#include "exp/bench_main.hh"
#include "exp/seed_stream.hh"
#include "pitfall/detectors.hh"
#include "pitfall/microbench.hh"
#include "simcore/stats.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

struct ExploreOptions
{
    MicroBenchConfig config;
    rnic::DeviceProfile profile = rnic::DeviceProfile::knl();
    std::string device = "cx4";
    std::size_t trials = 1;
    std::uint64_t seed = 0;
    bool trace = false;
    bool detect = false;

    /** --chaos-*: wire fault campaign layered onto the probe. */
    chaos::ChaosConfig chaos;
    bool chaosEnabled = false;
};

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [selection] [common flags]   # suite mode\n"
        "       %s explore [explore flags]      # free-parameter probe\n"
        "\n"
        "selection:\n"
        "  --list              print every registered bench and exit\n"
        "  --filter GLOBS      comma-separated glob list, e.g. 'fig*'\n"
        "  NAME...             bench names or globs as positionals\n"
        "  (no selection runs the full suite)\n"
        "\n"
        "common flags:\n"
        "  --quick             reduced trial budgets\n"
        "  --jobs N            worker threads (default: IBSIM_JOBS, then\n"
        "                      hardware threads)\n"
        "  --seed N            offset every seed stream (default 0)\n"
        "  --json PATH         JSON-lines output (default: IBSIM_JSON)\n"
        "  --csv PATH          CSV mirror (default: IBSIM_CSV)\n"
        "\n"
        "explore flags:\n"
        "  [--ops N] [--qps N] [--size BYTES] [--interval-us U]\n"
        "  [--mode none|server|client|both] [--device cx3|cx4|cx5|cx6]\n"
        "  [--cack N] [--rnr-ms F] [--trials N] [--seed N]\n"
        "  [--trace] [--detect]\n"
        "\n"
        "chaos flags (explore mode; rates are per-packet):\n"
        "  [--chaos-seed N] [--chaos-drop R] [--chaos-dup R]\n"
        "  [--chaos-reorder R] [--chaos-corrupt R] [--chaos-evade R]\n"
        "  [--chaos-delay-us U] [--chaos-nak R] [--chaos-flap-us U]\n",
        argv0, argv0);
}

bool
parseExplore(const std::vector<std::string>& args, ExploreOptions& opts)
{
    opts.config.numOps = 2;
    opts.config.interval = Time::ms(1);

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return args[++i].c_str();
        };
        if (arg == "--ops") {
            opts.config.numOps = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--qps") {
            opts.config.numQps = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--size") {
            opts.config.size =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr,
                                                        10));
        } else if (arg == "--interval-us") {
            opts.config.interval = Time::us(std::strtod(next(), nullptr));
        } else if (arg == "--mode") {
            const std::string mode = next();
            if (mode == "none")
                opts.config.odpMode = OdpMode::None;
            else if (mode == "server")
                opts.config.odpMode = OdpMode::ServerSide;
            else if (mode == "client")
                opts.config.odpMode = OdpMode::ClientSide;
            else if (mode == "both")
                opts.config.odpMode = OdpMode::BothSide;
            else
                return false;
        } else if (arg == "--device") {
            opts.device = next();
            if (opts.device == "cx3")
                opts.profile = rnic::DeviceProfile::connectX3();
            else if (opts.device == "cx4")
                opts.profile = rnic::DeviceProfile::knl();
            else if (opts.device == "cx5")
                opts.profile = rnic::DeviceProfile::connectX5();
            else if (opts.device == "cx6")
                opts.profile = rnic::DeviceProfile::connectX6();
            else
                return false;
        } else if (arg == "--cack") {
            opts.config.qpConfig.cack = static_cast<std::uint8_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--rnr-ms") {
            opts.config.qpConfig.minRnrNakDelay =
                Time::ms(std::strtod(next(), nullptr));
        } else if (arg == "--trials") {
            opts.trials = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            opts.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--trace") {
            opts.trace = true;
        } else if (arg == "--detect") {
            opts.detect = true;
        } else if (arg == "--chaos-seed") {
            opts.chaos.seed = std::strtoull(next(), nullptr, 10);
            opts.chaosEnabled = true;
        } else if (arg == "--chaos-drop") {
            opts.chaos.dropRate = std::strtod(next(), nullptr);
            opts.chaosEnabled = true;
        } else if (arg == "--chaos-dup") {
            opts.chaos.dupRate = std::strtod(next(), nullptr);
            opts.chaosEnabled = true;
        } else if (arg == "--chaos-reorder") {
            opts.chaos.reorderRate = std::strtod(next(), nullptr);
            opts.chaosEnabled = true;
        } else if (arg == "--chaos-corrupt") {
            opts.chaos.corruptRate = std::strtod(next(), nullptr);
            opts.chaosEnabled = true;
        } else if (arg == "--chaos-evade") {
            opts.chaos.corruptEvadeCrc = std::strtod(next(), nullptr);
            opts.chaosEnabled = true;
        } else if (arg == "--chaos-delay-us") {
            opts.chaos.delayRate = 1.0;
            opts.chaos.delayMax = Time::us(std::strtod(next(), nullptr));
            opts.chaosEnabled = true;
        } else if (arg == "--chaos-nak") {
            opts.chaos.forgedNakRate = std::strtod(next(), nullptr);
            opts.chaosEnabled = true;
        } else if (arg == "--chaos-flap-us") {
            opts.chaos.flapDown = Time::us(std::strtod(next(), nullptr));
            opts.chaosEnabled = true;
        } else {
            std::fprintf(stderr, "unknown explore option: %s\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

int
runExplore(const std::vector<std::string>& args, const char* argv0)
{
    ExploreOptions opts;
    if (!parseExplore(args, opts)) {
        usage(argv0);
        return 2;
    }

    std::printf("device=%s (%s)  ops=%zu  qps=%zu  size=%u B  "
                "interval=%s  mode=%s  cack=%u  rnr=%s\n\n",
                opts.device.c_str(),
                rnic::modelName(opts.profile.model), opts.config.numOps,
                opts.config.numQps, opts.config.size,
                opts.config.interval.str().c_str(),
                odpModeName(opts.config.odpMode),
                opts.config.qpConfig.cack,
                opts.config.qpConfig.minRnrNakDelay.str().c_str());

    // One seed stream for the probe: trials draw disjoint seeds instead
    // of the old seed+t arithmetic.
    const exp::SeedStream seeds("odp_bench_cli/explore", opts.seed);

    Accumulator exec;
    std::uint64_t timeouts = 0;
    // Chaos seeds are derived per trial from their own stream so each
    // trial's fault schedule is disjoint yet replayable from the flags.
    const exp::SeedStream chaosSeeds("odp_bench_cli/chaos",
                                     opts.chaos.seed);

    for (std::size_t t = 0; t < opts.trials; ++t) {
        MicroBenchmark bench(opts.config, opts.profile,
                             seeds.trialSeed(0, t));
        std::unique_ptr<chaos::ChaosEngine> engine;
        std::unique_ptr<chaos::InvariantMonitor> monitor;
        if (opts.chaosEnabled) {
            chaos::ChaosConfig cfg = opts.chaos;
            cfg.seed = chaosSeeds.trialSeed(0, t);
            engine = std::make_unique<chaos::ChaosEngine>(
                bench.cluster().events(), cfg);
            engine->install(bench.cluster().fabric());
            monitor = std::make_unique<chaos::InvariantMonitor>(
                bench.cluster().fabric());
            // QPs only exist once run() has connected them; watch from
            // the hook it fires right before the first post.
            bench.setQpReadyHook([&bench, &monitor] {
                auto& client = bench.cluster().node(0).rnic();
                auto& server = bench.cluster().node(1).rnic();
                for (auto* qp : client.allQps())
                    monitor->watch(client, *qp);
                for (auto* qp : server.allQps())
                    monitor->watch(server, *qp);
            });
        }
        auto r = bench.run();
        exec.add(r.executionTime.toSec());
        timeouts += r.timeouts;

        std::printf("trial %zu: exec=%s  completed=%s  timeouts=%llu  "
                    "rexmits=%llu  rnr=%llu  seq_naks=%llu  "
                    "upd_failures=%llu  packets=%llu\n",
                    t, r.executionTime.str().c_str(),
                    r.completedAll ? "yes" : "NO",
                    static_cast<unsigned long long>(r.timeouts),
                    static_cast<unsigned long long>(r.retransmissions),
                    static_cast<unsigned long long>(r.rnrNaksReceived),
                    static_cast<unsigned long long>(r.seqNaksReceived),
                    static_cast<unsigned long long>(r.updateFailures),
                    static_cast<unsigned long long>(r.totalPackets));

        if (opts.chaosEnabled) {
            const auto& cs = engine->injector().stats();
            std::printf("  chaos: dropped=%llu dup=%llu reorder=%llu "
                        "corrupt=%llu delayed=%llu flap=%llu "
                        "forged_naks=%llu\n"
                        "  oracle: %s  trace_hash=%016llx\n",
                        static_cast<unsigned long long>(
                            cs.dropped + cs.flapDropped),
                        static_cast<unsigned long long>(cs.duplicated),
                        static_cast<unsigned long long>(cs.reordered),
                        static_cast<unsigned long long>(cs.corrupted),
                        static_cast<unsigned long long>(cs.delayed),
                        static_cast<unsigned long long>(cs.flapDropped),
                        static_cast<unsigned long long>(cs.naksForged),
                        monitor->clean()
                            ? "clean"
                            : monitor->report().c_str(),
                        static_cast<unsigned long long>(
                            monitor->traceHash()));
        }

        if (opts.trace && bench.packetCapture()) {
            std::printf("\n%s\n",
                        capture::formatWorkflow(*bench.packetCapture(),
                                                bench.client().lid())
                            .c_str());
        }
        if (opts.detect && bench.packetCapture()) {
            std::printf("%s",
                        formatReport(
                            detectDamming(*bench.packetCapture()))
                            .c_str());
            std::printf("%s\n",
                        formatReport(detectFlood(*bench.packetCapture()))
                            .c_str());
        }
    }

    if (opts.trials > 1) {
        std::printf("\n%zu trials: avg %.4f s (min %.4f, max %.4f), "
                    "%llu total timeouts\n",
                    opts.trials, exec.mean(), exec.min(), exec.max(),
                    static_cast<unsigned long long>(timeouts));
    }
    return 0;
}

bool
isExploreFlag(const std::string& arg)
{
    static const char* flags[] = {"--ops",   "--qps",   "--size",
                                  "--interval-us", "--mode", "--device",
                                  "--cack",  "--rnr-ms", "--trials",
                                  "--trace", "--detect"};
    for (const char* f : flags)
        if (arg == f)
            return true;
    return arg.rfind("--chaos-", 0) == 0;
}

} // namespace

int
main(int argc, char** argv)
{
    // Explore mode: explicit "explore" subcommand, or any legacy flag
    // anywhere on the line (pre-harness command lines keep working).
    if (argc > 1 && std::strcmp(argv[1], "explore") == 0)
        return runExplore({argv + 2, argv + argc}, argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (isExploreFlag(argv[i]))
            return runExplore({argv + 1, argv + argc}, argv[0]);
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            usage(argv[0]);
            return 0;
        }
    }

    exp::Registry registry;
    bench::registerAllBenches(registry);

    exp::RunContext ctx;
    std::vector<std::string> rest;
    if (!exp::parseCommonFlags(argc, argv, ctx, rest)) {
        usage(argv[0]);
        return 2;
    }

    bool list = false;
    std::string patterns;
    auto add_patterns = [&](const std::string& globs) {
        if (!patterns.empty())
            patterns += ',';
        patterns += globs;
    };
    for (std::size_t i = 0; i < rest.size(); ++i) {
        if (rest[i] == "--list") {
            list = true;
        } else if (rest[i] == "--filter") {
            if (i + 1 >= rest.size()) {
                std::fprintf(stderr, "missing value for --filter\n");
                return 2;
            }
            add_patterns(rest[++i]);
        } else if (!rest[i].empty() && rest[i][0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", rest[i].c_str());
            usage(argv[0]);
            return 2;
        } else {
            add_patterns(rest[i]);
        }
    }

    if (list) {
        for (const auto& bench : registry.benches())
            std::printf("%-24s %s\n", bench.name.c_str(),
                        bench.title.c_str());
        return 0;
    }

    const auto selection =
        registry.match(patterns.empty() ? "*" : patterns);
    if (selection.empty()) {
        std::fprintf(stderr, "no bench matches '%s' (try --list)\n",
                     patterns.c_str());
        return 2;
    }
    return exp::runBenches(registry, selection, ctx);
}
