/**
 * @file
 * odp_bench_cli — the paper's micro-benchmark (Fig. 3) as a command-line
 * tool, for exploring the pitfall parameter space beyond the canned
 * benches.
 *
 * Usage:
 *   odp_bench_cli [--ops N] [--qps N] [--size BYTES] [--interval-us U]
 *                 [--mode none|server|client|both] [--device cx3|cx4|cx5|cx6]
 *                 [--cack N] [--rnr-ms F] [--trials N] [--seed N]
 *                 [--trace] [--detect]
 *
 * Examples:
 *   # The Fig. 5 damming case, with the packet trace:
 *   odp_bench_cli --ops 2 --interval-us 1000 --mode both --trace
 *
 *   # A flood: 128 QPs, one op each, 32-byte messages:
 *   odp_bench_cli --ops 128 --qps 128 --size 32 --interval-us 8 \
 *                 --mode client --cack 18 --detect
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "capture/trace_format.hh"
#include "pitfall/detectors.hh"
#include "pitfall/microbench.hh"
#include "simcore/stats.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

struct CliOptions
{
    MicroBenchConfig config;
    rnic::DeviceProfile profile = rnic::DeviceProfile::knl();
    std::string device = "cx4";
    std::size_t trials = 1;
    std::uint64_t seed = 1;
    bool trace = false;
    bool detect = false;
};

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--ops N] [--qps N] [--size BYTES] [--interval-us U]\n"
        "          [--mode none|server|client|both] [--device "
        "cx3|cx4|cx5|cx6]\n"
        "          [--cack N] [--rnr-ms F] [--trials N] [--seed N]\n"
        "          [--trace] [--detect]\n",
        argv0);
}

bool
parse(int argc, char** argv, CliOptions& opts)
{
    opts.config.numOps = 2;
    opts.config.interval = Time::ms(1);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--ops") {
            opts.config.numOps = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--qps") {
            opts.config.numQps = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--size") {
            opts.config.size =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr,
                                                        10));
        } else if (arg == "--interval-us") {
            opts.config.interval = Time::us(std::strtod(next(), nullptr));
        } else if (arg == "--mode") {
            const std::string mode = next();
            if (mode == "none")
                opts.config.odpMode = OdpMode::None;
            else if (mode == "server")
                opts.config.odpMode = OdpMode::ServerSide;
            else if (mode == "client")
                opts.config.odpMode = OdpMode::ClientSide;
            else if (mode == "both")
                opts.config.odpMode = OdpMode::BothSide;
            else
                return false;
        } else if (arg == "--device") {
            opts.device = next();
            if (opts.device == "cx3")
                opts.profile = rnic::DeviceProfile::connectX3();
            else if (opts.device == "cx4")
                opts.profile = rnic::DeviceProfile::knl();
            else if (opts.device == "cx5")
                opts.profile = rnic::DeviceProfile::connectX5();
            else if (opts.device == "cx6")
                opts.profile = rnic::DeviceProfile::connectX6();
            else
                return false;
        } else if (arg == "--cack") {
            opts.config.qpConfig.cack = static_cast<std::uint8_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--rnr-ms") {
            opts.config.qpConfig.minRnrNakDelay =
                Time::ms(std::strtod(next(), nullptr));
        } else if (arg == "--trials") {
            opts.trials = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            opts.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--trace") {
            opts.trace = true;
        } else if (arg == "--detect") {
            opts.detect = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    CliOptions opts;
    if (!parse(argc, argv, opts)) {
        usage(argv[0]);
        return 2;
    }

    std::printf("device=%s (%s)  ops=%zu  qps=%zu  size=%u B  "
                "interval=%s  mode=%s  cack=%u  rnr=%s\n\n",
                opts.device.c_str(),
                rnic::modelName(opts.profile.model), opts.config.numOps,
                opts.config.numQps, opts.config.size,
                opts.config.interval.str().c_str(),
                odpModeName(opts.config.odpMode),
                opts.config.qpConfig.cack,
                opts.config.qpConfig.minRnrNakDelay.str().c_str());

    Accumulator exec;
    std::uint64_t timeouts = 0;
    for (std::size_t t = 0; t < opts.trials; ++t) {
        MicroBenchmark bench(opts.config, opts.profile, opts.seed + t);
        auto r = bench.run();
        exec.add(r.executionTime.toSec());
        timeouts += r.timeouts;

        std::printf("trial %zu: exec=%s  completed=%s  timeouts=%llu  "
                    "rexmits=%llu  rnr=%llu  seq_naks=%llu  "
                    "upd_failures=%llu  packets=%llu\n",
                    t, r.executionTime.str().c_str(),
                    r.completedAll ? "yes" : "NO",
                    static_cast<unsigned long long>(r.timeouts),
                    static_cast<unsigned long long>(r.retransmissions),
                    static_cast<unsigned long long>(r.rnrNaksReceived),
                    static_cast<unsigned long long>(r.seqNaksReceived),
                    static_cast<unsigned long long>(r.updateFailures),
                    static_cast<unsigned long long>(r.totalPackets));

        if (opts.trace && bench.packetCapture()) {
            std::printf("\n%s\n",
                        capture::formatWorkflow(*bench.packetCapture(),
                                                bench.client().lid())
                            .c_str());
        }
        if (opts.detect && bench.packetCapture()) {
            std::printf("%s",
                        formatReport(
                            detectDamming(*bench.packetCapture()))
                            .c_str());
            std::printf("%s\n",
                        formatReport(detectFlood(*bench.packetCapture()))
                            .c_str());
        }
    }

    if (opts.trials > 1) {
        std::printf("\n%zu trials: avg %.4f s (min %.4f, max %.4f), "
                    "%llu total timeouts\n",
                    opts.trials, exec.mean(), exec.min(), exec.max(),
                    static_cast<unsigned long long>(timeouts));
    }
    return 0;
}
