file(REMOVE_RECURSE
  "CMakeFiles/test_workarounds.dir/test_workarounds.cc.o"
  "CMakeFiles/test_workarounds.dir/test_workarounds.cc.o.d"
  "test_workarounds"
  "test_workarounds.pdb"
  "test_workarounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workarounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
