# Empty compiler generated dependencies file for test_workarounds.
# This may be replaced when dependencies are built.
