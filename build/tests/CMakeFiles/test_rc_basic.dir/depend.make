# Empty dependencies file for test_rc_basic.
# This may be replaced when dependencies are built.
