file(REMOVE_RECURSE
  "CMakeFiles/test_rc_basic.dir/test_rc_basic.cc.o"
  "CMakeFiles/test_rc_basic.dir/test_rc_basic.cc.o.d"
  "test_rc_basic"
  "test_rc_basic.pdb"
  "test_rc_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
