file(REMOVE_RECURSE
  "CMakeFiles/test_regcache.dir/test_regcache.cc.o"
  "CMakeFiles/test_regcache.dir/test_regcache.cc.o.d"
  "test_regcache"
  "test_regcache.pdb"
  "test_regcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
