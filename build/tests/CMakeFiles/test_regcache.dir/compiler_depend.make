# Empty compiler generated dependencies file for test_regcache.
# This may be replaced when dependencies are built.
