# Empty dependencies file for test_workflow_traces.
# This may be replaced when dependencies are built.
