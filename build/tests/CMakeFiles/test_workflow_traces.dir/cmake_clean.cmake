file(REMOVE_RECURSE
  "CMakeFiles/test_workflow_traces.dir/test_workflow_traces.cc.o"
  "CMakeFiles/test_workflow_traces.dir/test_workflow_traces.cc.o.d"
  "test_workflow_traces"
  "test_workflow_traces.pdb"
  "test_workflow_traces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workflow_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
