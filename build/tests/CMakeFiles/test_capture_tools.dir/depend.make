# Empty dependencies file for test_capture_tools.
# This may be replaced when dependencies are built.
