file(REMOVE_RECURSE
  "CMakeFiles/test_capture_tools.dir/test_capture_tools.cc.o"
  "CMakeFiles/test_capture_tools.dir/test_capture_tools.cc.o.d"
  "test_capture_tools"
  "test_capture_tools.pdb"
  "test_capture_tools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capture_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
