# Empty compiler generated dependencies file for test_mem_odp.
# This may be replaced when dependencies are built.
