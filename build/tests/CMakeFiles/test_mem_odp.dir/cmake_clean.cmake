file(REMOVE_RECURSE
  "CMakeFiles/test_mem_odp.dir/test_mem_odp.cc.o"
  "CMakeFiles/test_mem_odp.dir/test_mem_odp.cc.o.d"
  "test_mem_odp"
  "test_mem_odp.pdb"
  "test_mem_odp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_odp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
