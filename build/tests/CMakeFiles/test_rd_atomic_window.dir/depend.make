# Empty dependencies file for test_rd_atomic_window.
# This may be replaced when dependencies are built.
