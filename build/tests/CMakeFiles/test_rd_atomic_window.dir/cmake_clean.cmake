file(REMOVE_RECURSE
  "CMakeFiles/test_rd_atomic_window.dir/test_rd_atomic_window.cc.o"
  "CMakeFiles/test_rd_atomic_window.dir/test_rd_atomic_window.cc.o.d"
  "test_rd_atomic_window"
  "test_rd_atomic_window.pdb"
  "test_rd_atomic_window[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rd_atomic_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
