# Empty compiler generated dependencies file for test_rnic_units.
# This may be replaced when dependencies are built.
