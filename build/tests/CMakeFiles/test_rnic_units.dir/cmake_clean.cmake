file(REMOVE_RECURSE
  "CMakeFiles/test_rnic_units.dir/test_rnic_units.cc.o"
  "CMakeFiles/test_rnic_units.dir/test_rnic_units.cc.o.d"
  "test_rnic_units"
  "test_rnic_units.pdb"
  "test_rnic_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rnic_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
