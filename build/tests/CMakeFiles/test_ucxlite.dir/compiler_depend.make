# Empty compiler generated dependencies file for test_ucxlite.
# This may be replaced when dependencies are built.
