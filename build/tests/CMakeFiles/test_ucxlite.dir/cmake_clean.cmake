file(REMOVE_RECURSE
  "CMakeFiles/test_ucxlite.dir/test_ucxlite.cc.o"
  "CMakeFiles/test_ucxlite.dir/test_ucxlite.cc.o.d"
  "test_ucxlite"
  "test_ucxlite.pdb"
  "test_ucxlite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ucxlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
