# Empty compiler generated dependencies file for test_cluster_api.
# This may be replaced when dependencies are built.
