file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_api.dir/test_cluster_api.cc.o"
  "CMakeFiles/test_cluster_api.dir/test_cluster_api.cc.o.d"
  "test_cluster_api"
  "test_cluster_api.pdb"
  "test_cluster_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
