# Empty dependencies file for test_pitfalls.
# This may be replaced when dependencies are built.
