file(REMOVE_RECURSE
  "CMakeFiles/test_pitfalls.dir/test_pitfalls.cc.o"
  "CMakeFiles/test_pitfalls.dir/test_pitfalls.cc.o.d"
  "test_pitfalls"
  "test_pitfalls.pdb"
  "test_pitfalls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pitfalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
