# Empty dependencies file for test_ud_rpc.
# This may be replaced when dependencies are built.
