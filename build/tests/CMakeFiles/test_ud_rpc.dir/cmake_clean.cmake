file(REMOVE_RECURSE
  "CMakeFiles/test_ud_rpc.dir/test_ud_rpc.cc.o"
  "CMakeFiles/test_ud_rpc.dir/test_ud_rpc.cc.o.d"
  "test_ud_rpc"
  "test_ud_rpc.pdb"
  "test_ud_rpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ud_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
