file(REMOVE_RECURSE
  "CMakeFiles/test_large_messages.dir/test_large_messages.cc.o"
  "CMakeFiles/test_large_messages.dir/test_large_messages.cc.o.d"
  "test_large_messages"
  "test_large_messages.pdb"
  "test_large_messages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_large_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
