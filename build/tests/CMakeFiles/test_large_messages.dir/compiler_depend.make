# Empty compiler generated dependencies file for test_large_messages.
# This may be replaced when dependencies are built.
