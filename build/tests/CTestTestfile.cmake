# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rc_basic[1]_include.cmake")
include("/root/repo/build/tests/test_pitfalls[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_mem_odp[1]_include.cmake")
include("/root/repo/build/tests/test_rnic_units[1]_include.cmake")
include("/root/repo/build/tests/test_capture_tools[1]_include.cmake")
include("/root/repo/build/tests/test_verbs[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_regcache[1]_include.cmake")
include("/root/repo/build/tests/test_atomics[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_workarounds[1]_include.cmake")
include("/root/repo/build/tests/test_large_messages[1]_include.cmake")
include("/root/repo/build/tests/test_ucxlite[1]_include.cmake")
include("/root/repo/build/tests/test_ud_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_multinode[1]_include.cmake")
include("/root/repo/build/tests/test_rd_atomic_window[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_api[1]_include.cmake")
include("/root/repo/build/tests/test_workflow_traces[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
