# Empty dependencies file for dsm_startup.
# This may be replaced when dependencies are built.
