file(REMOVE_RECURSE
  "CMakeFiles/dsm_startup.dir/dsm_startup.cpp.o"
  "CMakeFiles/dsm_startup.dir/dsm_startup.cpp.o.d"
  "dsm_startup"
  "dsm_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
