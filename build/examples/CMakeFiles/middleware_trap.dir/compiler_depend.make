# Empty compiler generated dependencies file for middleware_trap.
# This may be replaced when dependencies are built.
