file(REMOVE_RECURSE
  "CMakeFiles/middleware_trap.dir/middleware_trap.cpp.o"
  "CMakeFiles/middleware_trap.dir/middleware_trap.cpp.o.d"
  "middleware_trap"
  "middleware_trap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_trap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
