# Empty dependencies file for pitfall_hunt.
# This may be replaced when dependencies are built.
