file(REMOVE_RECURSE
  "CMakeFiles/pitfall_hunt.dir/pitfall_hunt.cpp.o"
  "CMakeFiles/pitfall_hunt.dir/pitfall_hunt.cpp.o.d"
  "pitfall_hunt"
  "pitfall_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfall_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
