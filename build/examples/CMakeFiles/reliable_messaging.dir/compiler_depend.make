# Empty compiler generated dependencies file for reliable_messaging.
# This may be replaced when dependencies are built.
