file(REMOVE_RECURSE
  "CMakeFiles/reliable_messaging.dir/reliable_messaging.cpp.o"
  "CMakeFiles/reliable_messaging.dir/reliable_messaging.cpp.o.d"
  "reliable_messaging"
  "reliable_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
