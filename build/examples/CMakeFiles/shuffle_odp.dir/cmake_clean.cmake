file(REMOVE_RECURSE
  "CMakeFiles/shuffle_odp.dir/shuffle_odp.cpp.o"
  "CMakeFiles/shuffle_odp.dir/shuffle_odp.cpp.o.d"
  "shuffle_odp"
  "shuffle_odp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_odp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
