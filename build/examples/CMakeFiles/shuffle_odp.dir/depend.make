# Empty dependencies file for shuffle_odp.
# This may be replaced when dependencies are built.
