file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_sparkucx.dir/bench_fig13_sparkucx.cc.o"
  "CMakeFiles/bench_fig13_sparkucx.dir/bench_fig13_sparkucx.cc.o.d"
  "bench_fig13_sparkucx"
  "bench_fig13_sparkucx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sparkucx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
