# Empty dependencies file for bench_fig4_interval.
# This may be replaced when dependencies are built.
