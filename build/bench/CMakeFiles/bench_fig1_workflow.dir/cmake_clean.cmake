file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_workflow.dir/bench_fig1_workflow.cc.o"
  "CMakeFiles/bench_fig1_workflow.dir/bench_fig1_workflow.cc.o.d"
  "bench_fig1_workflow"
  "bench_fig1_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
