# Empty compiler generated dependencies file for bench_fig8_psn_recovery.
# This may be replaced when dependencies are built.
