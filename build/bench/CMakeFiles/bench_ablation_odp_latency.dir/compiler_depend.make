# Empty compiler generated dependencies file for bench_ablation_odp_latency.
# This may be replaced when dependencies are built.
