file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_odp_latency.dir/bench_ablation_odp_latency.cc.o"
  "CMakeFiles/bench_ablation_odp_latency.dir/bench_ablation_odp_latency.cc.o.d"
  "bench_ablation_odp_latency"
  "bench_ablation_odp_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_odp_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
