file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_argodsm.dir/bench_fig12_argodsm.cc.o"
  "CMakeFiles/bench_fig12_argodsm.dir/bench_fig12_argodsm.cc.o.d"
  "bench_fig12_argodsm"
  "bench_fig12_argodsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_argodsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
