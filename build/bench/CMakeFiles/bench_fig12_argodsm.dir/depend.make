# Empty dependencies file for bench_fig12_argodsm.
# This may be replaced when dependencies are built.
