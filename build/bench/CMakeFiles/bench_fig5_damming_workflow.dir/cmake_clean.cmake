file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_damming_workflow.dir/bench_fig5_damming_workflow.cc.o"
  "CMakeFiles/bench_fig5_damming_workflow.dir/bench_fig5_damming_workflow.cc.o.d"
  "bench_fig5_damming_workflow"
  "bench_fig5_damming_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_damming_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
