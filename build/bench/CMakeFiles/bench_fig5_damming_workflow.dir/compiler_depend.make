# Empty compiler generated dependencies file for bench_fig5_damming_workflow.
# This may be replaced when dependencies are built.
