# Empty dependencies file for bench_simcore_micro.
# This may be replaced when dependencies are built.
