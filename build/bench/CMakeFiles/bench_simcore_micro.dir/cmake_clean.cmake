file(REMOVE_RECURSE
  "CMakeFiles/bench_simcore_micro.dir/bench_simcore_micro.cc.o"
  "CMakeFiles/bench_simcore_micro.dir/bench_simcore_micro.cc.o.d"
  "bench_simcore_micro"
  "bench_simcore_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simcore_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
