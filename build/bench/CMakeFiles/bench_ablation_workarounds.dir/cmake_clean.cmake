file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_workarounds.dir/bench_ablation_workarounds.cc.o"
  "CMakeFiles/bench_ablation_workarounds.dir/bench_ablation_workarounds.cc.o.d"
  "bench_ablation_workarounds"
  "bench_ablation_workarounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_workarounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
