# Empty dependencies file for bench_ablation_workarounds.
# This may be replaced when dependencies are built.
