file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_damming_probability.dir/bench_fig6_damming_probability.cc.o"
  "CMakeFiles/bench_fig6_damming_probability.dir/bench_fig6_damming_probability.cc.o.d"
  "bench_fig6_damming_probability"
  "bench_fig6_damming_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_damming_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
