# Empty dependencies file for bench_fig11_page_progress.
# This may be replaced when dependencies are built.
