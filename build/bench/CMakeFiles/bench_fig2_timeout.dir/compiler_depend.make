# Empty compiler generated dependencies file for bench_fig2_timeout.
# This may be replaced when dependencies are built.
