file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_timeout.dir/bench_fig2_timeout.cc.o"
  "CMakeFiles/bench_fig2_timeout.dir/bench_fig2_timeout.cc.o.d"
  "bench_fig2_timeout"
  "bench_fig2_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
