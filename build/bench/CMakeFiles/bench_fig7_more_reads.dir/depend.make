# Empty dependencies file for bench_fig7_more_reads.
# This may be replaced when dependencies are built.
