file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_flood.dir/bench_fig9_flood.cc.o"
  "CMakeFiles/bench_fig9_flood.dir/bench_fig9_flood.cc.o.d"
  "bench_fig9_flood"
  "bench_fig9_flood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_flood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
