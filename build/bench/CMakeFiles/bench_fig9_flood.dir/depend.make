# Empty dependencies file for bench_fig9_flood.
# This may be replaced when dependencies are built.
