
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/mini_dsm.cc" "src/CMakeFiles/ibsim.dir/apps/mini_dsm.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/apps/mini_dsm.cc.o.d"
  "/root/repo/src/apps/mini_shuffle.cc" "src/CMakeFiles/ibsim.dir/apps/mini_shuffle.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/apps/mini_shuffle.cc.o.d"
  "/root/repo/src/capture/analysis.cc" "src/CMakeFiles/ibsim.dir/capture/analysis.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/capture/analysis.cc.o.d"
  "/root/repo/src/capture/capture.cc" "src/CMakeFiles/ibsim.dir/capture/capture.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/capture/capture.cc.o.d"
  "/root/repo/src/capture/trace_format.cc" "src/CMakeFiles/ibsim.dir/capture/trace_format.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/capture/trace_format.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/ibsim.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/CMakeFiles/ibsim.dir/cluster/node.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/cluster/node.cc.o.d"
  "/root/repo/src/mem/address_space.cc" "src/CMakeFiles/ibsim.dir/mem/address_space.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/mem/address_space.cc.o.d"
  "/root/repo/src/net/fabric.cc" "src/CMakeFiles/ibsim.dir/net/fabric.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/net/fabric.cc.o.d"
  "/root/repo/src/net/loss.cc" "src/CMakeFiles/ibsim.dir/net/loss.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/net/loss.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/ibsim.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/net/packet.cc.o.d"
  "/root/repo/src/odp/odp_driver.cc" "src/CMakeFiles/ibsim.dir/odp/odp_driver.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/odp/odp_driver.cc.o.d"
  "/root/repo/src/odp/page_status_board.cc" "src/CMakeFiles/ibsim.dir/odp/page_status_board.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/odp/page_status_board.cc.o.d"
  "/root/repo/src/odp/translation_table.cc" "src/CMakeFiles/ibsim.dir/odp/translation_table.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/odp/translation_table.cc.o.d"
  "/root/repo/src/pitfall/detectors.cc" "src/CMakeFiles/ibsim.dir/pitfall/detectors.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/pitfall/detectors.cc.o.d"
  "/root/repo/src/pitfall/experiment.cc" "src/CMakeFiles/ibsim.dir/pitfall/experiment.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/pitfall/experiment.cc.o.d"
  "/root/repo/src/pitfall/microbench.cc" "src/CMakeFiles/ibsim.dir/pitfall/microbench.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/pitfall/microbench.cc.o.d"
  "/root/repo/src/pitfall/timeout_probe.cc" "src/CMakeFiles/ibsim.dir/pitfall/timeout_probe.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/pitfall/timeout_probe.cc.o.d"
  "/root/repo/src/pitfall/workarounds.cc" "src/CMakeFiles/ibsim.dir/pitfall/workarounds.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/pitfall/workarounds.cc.o.d"
  "/root/repo/src/regcache/registration_cache.cc" "src/CMakeFiles/ibsim.dir/regcache/registration_cache.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/regcache/registration_cache.cc.o.d"
  "/root/repo/src/rnic/device_profile.cc" "src/CMakeFiles/ibsim.dir/rnic/device_profile.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/rnic/device_profile.cc.o.d"
  "/root/repo/src/rnic/qp_context.cc" "src/CMakeFiles/ibsim.dir/rnic/qp_context.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/rnic/qp_context.cc.o.d"
  "/root/repo/src/rnic/rc_requester.cc" "src/CMakeFiles/ibsim.dir/rnic/rc_requester.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/rnic/rc_requester.cc.o.d"
  "/root/repo/src/rnic/rc_responder.cc" "src/CMakeFiles/ibsim.dir/rnic/rc_responder.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/rnic/rc_responder.cc.o.d"
  "/root/repo/src/rnic/rnic.cc" "src/CMakeFiles/ibsim.dir/rnic/rnic.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/rnic/rnic.cc.o.d"
  "/root/repo/src/rnic/timeout.cc" "src/CMakeFiles/ibsim.dir/rnic/timeout.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/rnic/timeout.cc.o.d"
  "/root/repo/src/rpc/rpc.cc" "src/CMakeFiles/ibsim.dir/rpc/rpc.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/rpc/rpc.cc.o.d"
  "/root/repo/src/simcore/event_queue.cc" "src/CMakeFiles/ibsim.dir/simcore/event_queue.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/simcore/event_queue.cc.o.d"
  "/root/repo/src/simcore/log.cc" "src/CMakeFiles/ibsim.dir/simcore/log.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/simcore/log.cc.o.d"
  "/root/repo/src/simcore/rng.cc" "src/CMakeFiles/ibsim.dir/simcore/rng.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/simcore/rng.cc.o.d"
  "/root/repo/src/simcore/stats.cc" "src/CMakeFiles/ibsim.dir/simcore/stats.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/simcore/stats.cc.o.d"
  "/root/repo/src/simcore/time.cc" "src/CMakeFiles/ibsim.dir/simcore/time.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/simcore/time.cc.o.d"
  "/root/repo/src/swrel/soft_reliable.cc" "src/CMakeFiles/ibsim.dir/swrel/soft_reliable.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/swrel/soft_reliable.cc.o.d"
  "/root/repo/src/ucxlite/ucx_lite.cc" "src/CMakeFiles/ibsim.dir/ucxlite/ucx_lite.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/ucxlite/ucx_lite.cc.o.d"
  "/root/repo/src/verbs/completion_queue.cc" "src/CMakeFiles/ibsim.dir/verbs/completion_queue.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/verbs/completion_queue.cc.o.d"
  "/root/repo/src/verbs/memory_region.cc" "src/CMakeFiles/ibsim.dir/verbs/memory_region.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/verbs/memory_region.cc.o.d"
  "/root/repo/src/verbs/queue_pair.cc" "src/CMakeFiles/ibsim.dir/verbs/queue_pair.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/verbs/queue_pair.cc.o.d"
  "/root/repo/src/verbs/types.cc" "src/CMakeFiles/ibsim.dir/verbs/types.cc.o" "gcc" "src/CMakeFiles/ibsim.dir/verbs/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
