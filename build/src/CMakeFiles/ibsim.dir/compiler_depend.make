# Empty compiler generated dependencies file for ibsim.
# This may be replaced when dependencies are built.
