file(REMOVE_RECURSE
  "libibsim.a"
)
