# Empty compiler generated dependencies file for odp_bench_cli.
# This may be replaced when dependencies are built.
