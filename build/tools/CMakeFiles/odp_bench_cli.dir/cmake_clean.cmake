file(REMOVE_RECURSE
  "CMakeFiles/odp_bench_cli.dir/odp_bench_cli.cc.o"
  "CMakeFiles/odp_bench_cli.dir/odp_bench_cli.cc.o.d"
  "odp_bench_cli"
  "odp_bench_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odp_bench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
