#include "suite.hh"

namespace ibsim {
namespace bench {

void
registerAllBenches(exp::Registry& registry)
{
    registerTable1(registry);
    registerFig1(registry);
    registerFig2(registry);
    registerFig4(registry);
    registerFig5(registry);
    registerFig6(registry);
    registerFig7(registry);
    registerFig8(registry);
    registerFig9(registry);
    registerFig11(registry);
    registerFig12(registry);
    registerFig13(registry);
    registerAblationWorkarounds(registry);
    registerAblationRegcache(registry);
    registerAblationReliability(registry);
    registerAblationOdpLatency(registry);
    registerSimcoreMicro(registry);
    registerChaosProbe(registry);
    registerFloodCapacity(registry);
    registerAtomicReplayThrash(registry);
    registerScaleSmoke(registry);
    registerFaultStorm(registry);
}

} // namespace bench
} // namespace ibsim
