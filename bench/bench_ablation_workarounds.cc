/**
 * @file
 * Ablation: the software workarounds of paper Sec. IX-A against both
 * pitfalls.
 *
 *  1. Packet damming vs minimal RNR NAK delay — programming the smallest
 *     delay narrows the window in which the timeout can strike.
 *  2. Packet damming vs a dummy-communication software timer — a periodic
 *     dummy READ provokes the PSN-sequence-error NAK and recovers the
 *     dammed request in milliseconds instead of ~500 ms.
 *  3. Packet flood vs prefetch (ibv_advise_mr) — pre-resolving the pages
 *     eliminates the faults, hence the flood.
 */

#include <cstdio>
#include <string>

#include "pitfall/experiment.hh"
#include "pitfall/microbench.hh"
#include "pitfall/workarounds.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

void
dammingVsRnrDelay(std::size_t trials)
{
    std::printf("-- 1. damming window vs minimal RNR NAK delay "
                "(2 READs, server-side ODP, interval 1 ms) --\n\n");
    TablePrinter table({"rnr_delay_ms", "P(timeout)%", "avg_exec_s"});
    table.printHeader();
    for (double delay_ms : {0.01, 0.16, 0.64, 1.28, 10.24}) {
        std::size_t timeouts = 0;
        auto acc = runTrials(trials, [&](std::uint64_t seed) {
            MicroBenchConfig config;
            config.numOps = 2;
            config.interval = Time::ms(1);
            config.odpMode = OdpMode::ServerSide;
            config.qpConfig.minRnrNakDelay = Time::ms(delay_ms);
            config.capture = false;
            MicroBenchmark bench(config, rnic::DeviceProfile::knl(),
                                 seed);
            auto r = bench.run();
            if (r.timedOut())
                ++timeouts;
            return r.executionTime.toSec();
        }, static_cast<std::uint64_t>(delay_ms * 1000));
        table.printRow({TablePrinter::fmt(delay_ms, 2),
                        TablePrinter::fmt(100.0 * timeouts / trials, 0),
                        TablePrinter::fmt(acc.mean(), 4)});
    }
    std::printf("\n");
}

void
dammingVsDummyTimer(std::size_t trials)
{
    std::printf("-- 2. damming vs dummy-communication timer "
                "(2 READs, both-side ODP, interval 1 ms) --\n\n");
    TablePrinter table({"dummy_timer", "P(timeout)%", "avg_exec_s"});
    table.printHeader();

    for (bool use_timer : {false, true}) {
        std::size_t timeouts = 0;
        auto acc = runTrials(trials, [&](std::uint64_t seed) {
            MicroBenchConfig config;
            config.numOps = 2;
            config.interval = Time::ms(1);
            config.odpMode = OdpMode::BothSide;
            config.capture = false;
            MicroBenchmark bench(config, rnic::DeviceProfile::knl(),
                                 seed);

            // A pinned side-channel buffer pair for the dummy READs.
            Node& client = bench.client();
            Node& server = bench.server();
            const std::uint64_t dl = client.alloc(4096);
            const std::uint64_t dr = server.alloc(4096);
            auto& dmr_c = client.registerMemory(
                dl, 4096, verbs::AccessFlags::pinned());
            auto& dmr_s = server.registerMemory(
                dr, 4096, verbs::AccessFlags::pinned());

            // The benchmark creates its QPs inside run(); attach the
            // dummy timer to the first QP via a pre-scheduled hook.
            std::unique_ptr<DummyCommTimer> timer;
            if (use_timer) {
                bench.cluster().events().scheduleAfter(
                    Time::us(1), [&] {
                        if (bench.clientQps().empty())
                            return;
                        timer = std::make_unique<DummyCommTimer>(
                            bench.cluster(), bench.clientQps()[0], dl,
                            dmr_c.lkey(), dr, dmr_s.rkey(),
                            /*period=*/Time::ms(5));
                        timer->start();
                    });
            }
            auto r = bench.run();
            if (timer)
                timer->stop();
            if (r.timedOut())
                ++timeouts;
            return r.executionTime.toSec();
        }, use_timer ? 500 : 600);
        table.printRow({use_timer ? "on (5 ms)" : "off",
                        TablePrinter::fmt(100.0 * timeouts / trials, 0),
                        TablePrinter::fmt(acc.mean(), 4)});
    }
    std::printf("\n");
}

void
floodVsPrefetch(std::size_t trials)
{
    std::printf("-- 3. flood vs prefetch (128 QPs, 128 ops, 32 B, "
                "client-side ODP) --\n\n");
    TablePrinter table({"prefetch", "avg_exec_ms", "upd_failures",
                        "rexmits"});
    table.printHeader();

    for (bool prefetch : {false, true}) {
        Accumulator exec;
        Accumulator fails;
        Accumulator rexmits;
        for (std::size_t t = 0; t < trials; ++t) {
            MicroBenchConfig config;
            config.numOps = 128;
            config.numQps = 128;
            config.size = 32;
            config.interval = Time::us(8);
            config.odpMode = OdpMode::ClientSide;
            config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
            config.capture = false;
            auto profile = rnic::DeviceProfile::knl();
            profile.faultTiming.faultLatencyMin = Time::us(780);
            profile.faultTiming.faultLatencyMax = Time::us(820);
            MicroBenchmark bench(config, profile, t + 1);
            if (prefetch) {
                // ibv_advise_mr on the whole destination range right as
                // the run starts (the MR is created inside run(); advise
                // through a scheduled hook).
                bench.cluster().events().scheduleAfter(
                    Time::ns(500), [&bench] {
                        if (auto* mr = bench.clientMr()) {
                            bench.client().prefetch(*mr, mr->addr(),
                                                    mr->length());
                        }
                    });
            }
            auto r = bench.run();
            exec.add(r.executionTime.toMs());
            fails.add(static_cast<double>(r.updateFailures));
            rexmits.add(static_cast<double>(r.retransmissions));
        }
        table.printRow({prefetch ? "on" : "off",
                        TablePrinter::fmt(exec.mean(), 3),
                        TablePrinter::fmt(fails.mean(), 0),
                        TablePrinter::fmt(rexmits.mean(), 0)});
    }
    std::printf("\n");
}

void
floodVsRescue(std::size_t trials)
{
    std::printf("-- 4. flood vs re-issue on fresh QPs "
                "(128 QPs, 128 ops, 32 B, client-side ODP) --\n\n");
    TablePrinter table({"rescue", "avg_avail_ms", "p95_avail_ms",
                        "rescues"});
    table.printHeader();

    for (bool rescue : {false, true}) {
        Accumulator avail;
        Accumulator p95;
        Accumulator rescues;
        for (std::size_t t = 0; t < trials; ++t) {
            MicroBenchConfig config;
            config.numOps = 128;
            config.numQps = 128;
            config.size = 32;
            config.interval = Time::us(8);
            config.odpMode = OdpMode::ClientSide;
            config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
            config.capture = false;
            auto profile = rnic::DeviceProfile::knl();
            profile.faultTiming.faultLatencyMin = Time::us(780);
            profile.faultTiming.faultLatencyMax = Time::us(820);
            MicroBenchmark bench(config, profile, t + 1);

            std::unique_ptr<FloodRescue> pool;
            verbs::CompletionQueue* rescue_cq = nullptr;
            if (rescue) {
                // Once the flood is underway (the page fault itself is
                // long resolved), re-issue every incomplete READ on a
                // fresh QP whose status view is not subject to the
                // update failure.
                bench.cluster().events().scheduleAfter(
                    Time::ms(2.5), [&] {
                        rescue_cq = &bench.client().createCq();
                        pool = std::make_unique<FloodRescue>(
                            bench.cluster(), bench.client(),
                            bench.server(), *rescue_cq,
                            MicroBenchConfig::ucxDefaultConfig(),
                            /*pool_size=*/8);
                        auto* cmr = bench.clientMr();
                        auto* smr = bench.serverMr();
                        for (std::size_t i = 0; i < 128; ++i) {
                            pool->rescue(cmr->addr() + 32 * i,
                                         cmr->lkey(),
                                         smr->addr() + 32 * i,
                                         smr->rkey(), 32, 100000 + i);
                        }
                    });
            }

            auto r = bench.run();

            // Data-available time per op: the earlier of the original
            // completion and its rescue copy.
            std::vector<double> avail_ms;
            avail_ms.reserve(128);
            for (std::size_t i = 0; i < 128; ++i)
                avail_ms.push_back(r.completionTimes[i].toMs());
            if (rescue_cq) {
                for (const auto& wc : rescue_cq->poll()) {
                    if (!wc.ok() || wc.wrId < 100000)
                        continue;
                    const std::size_t i = wc.wrId - 100000;
                    avail_ms[i] =
                        std::min(avail_ms[i], wc.completedAt.toMs());
                }
            }
            Accumulator per_run;
            for (double v : avail_ms)
                per_run.add(v);
            avail.add(per_run.mean());
            p95.add(per_run.percentile(95));
            rescues.add(pool ? static_cast<double>(pool->rescuesIssued())
                             : 0.0);
        }
        table.printRow({rescue ? "on (8 QPs)" : "off",
                        TablePrinter::fmt(avail.mean(), 3),
                        TablePrinter::fmt(p95.mean(), 3),
                        TablePrinter::fmt(rescues.mean(), 0)});
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    const std::size_t trials =
        (argc > 1 && std::string(argv[1]) == "--quick") ? 4 : 10;
    std::printf("== Ablation: Sec. IX-A workarounds ==\n\n");
    dammingVsRnrDelay(trials);
    dammingVsDummyTimer(trials);
    floodVsPrefetch(trials);
    floodVsRescue(trials);
    return 0;
}
