/**
 * @file
 * Ablation: the software workarounds of paper Sec. IX-A against both
 * pitfalls.
 *
 *  1. Packet damming vs minimal RNR NAK delay — programming the smallest
 *     delay narrows the window in which the timeout can strike.
 *  2. Packet damming vs a dummy-communication software timer — a periodic
 *     dummy READ provokes the PSN-sequence-error NAK and recovers the
 *     dammed request in milliseconds instead of ~500 ms.
 *  3. Packet flood vs prefetch (ibv_advise_mr) — pre-resolving the pages
 *     eliminates the faults, hence the flood.
 *  4. Packet flood vs re-issuing stalled READs on fresh QPs.
 */

#include "suite.hh"

#include <algorithm>
#include <memory>

#include "pitfall/microbench.hh"
#include "pitfall/workarounds.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace ibsim {
namespace bench {

namespace {

MicroBenchConfig
floodConfig()
{
    MicroBenchConfig config;
    config.numOps = 128;
    config.numQps = 128;
    config.size = 32;
    config.interval = Time::us(8);
    config.odpMode = OdpMode::ClientSide;
    config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
    config.capture = false;
    return config;
}

rnic::DeviceProfile
floodProfile()
{
    auto profile = rnic::DeviceProfile::knl();
    profile.faultTiming.faultLatencyMin = Time::us(780);
    profile.faultTiming.faultLatencyMax = Time::us(820);
    return profile;
}

void
dammingVsRnrDelay(const exp::RunContext& ctx, exp::ResultSink& sink,
                  std::size_t trials)
{
    exp::Sweep sweep;
    sweep.axis("rnr_delay_ms", {0.01, 0.16, 0.64, 1.28, 10.24}, 2);
    auto result = ctx.runner("ablation_workarounds/rnr").run(
        sweep, trials, [](const exp::Cell& cell, std::uint64_t seed) {
            MicroBenchConfig config;
            config.numOps = 2;
            config.interval = Time::ms(1);
            config.odpMode = OdpMode::ServerSide;
            config.qpConfig.minRnrNakDelay =
                Time::ms(cell.num("rnr_delay_ms"));
            config.capture = false;
            MicroBenchmark bench(config, rnic::DeviceProfile::knl(),
                                 seed);
            auto r = bench.run();
            return exp::Metrics{}
                .set("timeout", r.timedOut())
                .set("exec_s", r.executionTime.toSec());
        });
    sink.table("1. damming window vs minimal RNR NAK delay (2 READs, "
               "server-side ODP, interval 1 ms)",
               result,
               {exp::col("timeout", exp::Stat::PctMean, 0, "P(timeout)%"),
                exp::col("exec_s", exp::Stat::Mean, 4, "avg_exec_s")});
}

void
dammingVsDummyTimer(const exp::RunContext& ctx, exp::ResultSink& sink,
                    std::size_t trials)
{
    exp::Sweep sweep;
    sweep.axis("dummy_timer", std::vector<std::string>{"off", "on (5 ms)"});
    auto result = ctx.runner("ablation_workarounds/dummy").run(
        sweep, trials, [](const exp::Cell& cell, std::uint64_t seed) {
            const bool use_timer = cell.valueIndex("dummy_timer") == 1;
            MicroBenchConfig config;
            config.numOps = 2;
            config.interval = Time::ms(1);
            config.odpMode = OdpMode::BothSide;
            config.capture = false;
            MicroBenchmark bench(config, rnic::DeviceProfile::knl(),
                                 seed);

            // A pinned side-channel buffer pair for the dummy READs.
            Node& client = bench.client();
            Node& server = bench.server();
            const std::uint64_t dl = client.alloc(4096);
            const std::uint64_t dr = server.alloc(4096);
            auto& dmr_c = client.registerMemory(
                dl, 4096, verbs::AccessFlags::pinned());
            auto& dmr_s = server.registerMemory(
                dr, 4096, verbs::AccessFlags::pinned());

            // The benchmark creates its QPs inside run(); attach the
            // dummy timer to the first QP via a pre-scheduled hook.
            std::unique_ptr<DummyCommTimer> timer;
            if (use_timer) {
                bench.cluster().events().scheduleAfter(Time::us(1), [&] {
                    if (bench.clientQps().empty())
                        return;
                    timer = std::make_unique<DummyCommTimer>(
                        bench.cluster(), bench.clientQps()[0], dl,
                        dmr_c.lkey(), dr, dmr_s.rkey(),
                        /*period=*/Time::ms(5));
                    timer->start();
                });
            }
            auto r = bench.run();
            if (timer)
                timer->stop();
            return exp::Metrics{}
                .set("timeout", r.timedOut())
                .set("exec_s", r.executionTime.toSec());
        });
    sink.table("2. damming vs dummy-communication timer (2 READs, "
               "both-side ODP, interval 1 ms)",
               result,
               {exp::col("timeout", exp::Stat::PctMean, 0, "P(timeout)%"),
                exp::col("exec_s", exp::Stat::Mean, 4, "avg_exec_s")});
}

void
floodVsPrefetch(const exp::RunContext& ctx, exp::ResultSink& sink,
                std::size_t trials)
{
    exp::Sweep sweep;
    sweep.axis("prefetch", std::vector<std::string>{"off", "on"});
    auto result = ctx.runner("ablation_workarounds/prefetch").run(
        sweep, trials, [](const exp::Cell& cell, std::uint64_t seed) {
            const bool prefetch = cell.valueIndex("prefetch") == 1;
            MicroBenchmark bench(floodConfig(), floodProfile(), seed);
            if (prefetch) {
                // ibv_advise_mr on the whole destination range right as
                // the run starts (the MR is created inside run(); advise
                // through a scheduled hook).
                bench.cluster().events().scheduleAfter(
                    Time::ns(500), [&bench] {
                        if (auto* mr = bench.clientMr()) {
                            bench.client().prefetch(*mr, mr->addr(),
                                                    mr->length());
                        }
                    });
            }
            auto r = bench.run();
            return exp::Metrics{}
                .set("exec_ms", r.executionTime.toMs())
                .set("upd_failures",
                     static_cast<double>(r.updateFailures))
                .set("rexmits", static_cast<double>(r.retransmissions));
        });
    sink.table("3. flood vs prefetch (128 QPs, 128 ops, 32 B, "
               "client-side ODP)",
               result,
               {exp::col("exec_ms", exp::Stat::Mean, 3, "avg_exec_ms"),
                exp::col("upd_failures", exp::Stat::Mean, 0,
                         "upd_failures"),
                exp::col("rexmits", exp::Stat::Mean, 0, "rexmits")});
}

void
floodVsRescue(const exp::RunContext& ctx, exp::ResultSink& sink,
              std::size_t trials)
{
    exp::Sweep sweep;
    sweep.axis("rescue", std::vector<std::string>{"off", "on (8 QPs)"});
    auto result = ctx.runner("ablation_workarounds/rescue").run(
        sweep, trials, [](const exp::Cell& cell, std::uint64_t seed) {
            const bool rescue = cell.valueIndex("rescue") == 1;
            MicroBenchmark bench(floodConfig(), floodProfile(), seed);

            std::unique_ptr<FloodRescue> pool;
            verbs::CompletionQueue* rescue_cq = nullptr;
            if (rescue) {
                // Once the flood is underway (the page fault itself is
                // long resolved), re-issue every incomplete READ on a
                // fresh QP whose status view is not subject to the
                // update failure.
                bench.cluster().events().scheduleAfter(
                    Time::ms(2.5), [&] {
                        rescue_cq = &bench.client().createCq();
                        pool = std::make_unique<FloodRescue>(
                            bench.cluster(), bench.client(),
                            bench.server(), *rescue_cq,
                            MicroBenchConfig::ucxDefaultConfig(),
                            /*pool_size=*/8);
                        auto* cmr = bench.clientMr();
                        auto* smr = bench.serverMr();
                        for (std::size_t i = 0; i < 128; ++i) {
                            pool->rescue(cmr->addr() + 32 * i,
                                         cmr->lkey(),
                                         smr->addr() + 32 * i,
                                         smr->rkey(), 32, 100000 + i);
                        }
                    });
            }

            auto r = bench.run();

            // Data-available time per op: the earlier of the original
            // completion and its rescue copy.
            std::vector<double> avail_ms;
            avail_ms.reserve(128);
            for (std::size_t i = 0; i < 128; ++i)
                avail_ms.push_back(r.completionTimes[i].toMs());
            if (rescue_cq) {
                for (const auto& wc : rescue_cq->poll()) {
                    if (!wc.ok() || wc.wrId < 100000)
                        continue;
                    const std::size_t i = wc.wrId - 100000;
                    avail_ms[i] =
                        std::min(avail_ms[i], wc.completedAt.toMs());
                }
            }
            Accumulator per_run;
            for (double v : avail_ms)
                per_run.add(v);
            return exp::Metrics{}
                .set("avail_ms", per_run.mean())
                .set("p95_avail_ms", per_run.percentile(95))
                .set("rescues",
                     pool ? static_cast<double>(pool->rescuesIssued())
                          : 0.0);
        });
    sink.table("4. flood vs re-issue on fresh QPs (128 QPs, 128 ops, "
               "32 B, client-side ODP)",
               result,
               {exp::col("avail_ms", exp::Stat::Mean, 3, "avg_avail_ms"),
                exp::col("p95_avail_ms", exp::Stat::Mean, 3,
                         "p95_avail_ms"),
                exp::col("rescues", exp::Stat::Mean, 0, "rescues")});
}

} // namespace

void
registerAblationWorkarounds(exp::Registry& registry)
{
    registry.add(
        {"ablation_workarounds", "Sec. IX-A software workarounds",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(10, 4);
             auto sink = ctx.sink("ablation_workarounds");
             sink.note("== Ablation: Sec. IX-A workarounds ==");
             sink.blank();
             dammingVsRnrDelay(ctx, sink, trials);
             dammingVsDummyTimer(ctx, sink, trials);
             floodVsPrefetch(ctx, sink, trials);
             floodVsRescue(ctx, sink, trials);
         }});
}

} // namespace bench
} // namespace ibsim
