/**
 * @file
 * Paper Fig. 7: probability of timeout vs interval for 2, 3 and 4 READ
 * operations, both-side ODP, min RNR NAK delay 1.28 ms.
 *
 * More operations *narrow* the window: a timeout needs every READ to fit
 * inside the first one's pending period, otherwise a later request
 * provokes a PSN-sequence-error NAK and go-back-N recovers immediately
 * (Sec. V-B). Expected cut-offs: ~4.5 ms / ~2.25 ms / ~1.5 ms.
 */

#include "suite.hh"

#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace ibsim {
namespace bench {

void
registerFig7(exp::Registry& registry)
{
    registry.add(
        {"fig7", "P(timeout) vs interval for 2/3/4 READs",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(10, 4);

             exp::Sweep sweep;
             sweep.axis("ops", {2.0, 3.0, 4.0}, 0)
                 .axis("interval_ms", exp::Sweep::range(0.0, 6.0, 0.25),
                       2);

             auto result = ctx.runner("fig7").run(
                 sweep, trials,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     MicroBenchConfig config;
                     config.numOps =
                         static_cast<std::size_t>(cell.num("ops"));
                     config.interval =
                         Time::ms(cell.num("interval_ms"));
                     config.odpMode = OdpMode::BothSide;
                     config.capture = false;
                     MicroBenchmark bench(
                         config, rnic::DeviceProfile::knl(), seed);
                     return exp::Metrics{}.set("timeout",
                                               bench.run().timedOut());
                 });

             auto sink = ctx.sink("fig7");
             sink.pivot("Fig. 7: P(timeout) % vs interval for 2/3/4 "
                        "READs (both-side ODP)",
                        result, "interval_ms", "ops",
                        exp::col("timeout", exp::Stat::PctMean, 0,
                                 "P(timeout)%"));
             sink.note("Paper: increasing the op count narrows the "
                       "timeout range (PSN sequence error recovery).");
         }});
}

} // namespace bench
} // namespace ibsim
