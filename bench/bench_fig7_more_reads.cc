/**
 * @file
 * Paper Fig. 7: probability of timeout vs interval for 2, 3 and 4 READ
 * operations, both-side ODP, min RNR NAK delay 1.28 ms.
 *
 * More operations *narrow* the window: a timeout needs every READ to fit
 * inside the first one's pending period, otherwise a later request
 * provokes a PSN-sequence-error NAK and go-back-N recovers immediately
 * (Sec. V-B). Expected cut-offs: ~4.5 ms / ~2.25 ms / ~1.5 ms.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "pitfall/experiment.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

int
main(int argc, char** argv)
{
    const std::size_t trials =
        (argc > 1 && std::string(argv[1]) == "--quick") ? 4 : 10;

    std::printf("== Fig. 7: P(timeout) %% vs interval for 2/3/4 READs "
                "(both-side ODP) ==\n\n");
    TablePrinter table({"interval_ms", "2 ops", "3 ops", "4 ops"});
    table.printHeader();

    for (double interval_ms = 0.0; interval_ms <= 6.01;
         interval_ms += 0.25) {
        std::vector<std::string> cells{TablePrinter::fmt(interval_ms, 2)};
        for (std::size_t ops : {2u, 3u, 4u}) {
            const double p = probabilityPercent(
                trials,
                [&](std::uint64_t seed) {
                    MicroBenchConfig config;
                    config.numOps = ops;
                    config.interval = Time::ms(interval_ms);
                    config.odpMode = OdpMode::BothSide;
                    config.capture = false;
                    MicroBenchmark bench(config,
                                         rnic::DeviceProfile::knl(),
                                         seed);
                    return bench.run().timedOut();
                },
                static_cast<std::uint64_t>(ops * 1000 +
                                           interval_ms * 40));
            cells.push_back(TablePrinter::fmt(p, 0));
        }
        table.printRow(cells);
    }

    std::printf("\nPaper: increasing the op count narrows the timeout "
                "range (PSN sequence error recovery).\n");
    return 0;
}
