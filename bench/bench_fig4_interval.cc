/**
 * @file
 * Paper Fig. 4: average execution time of the micro-benchmark with two
 * READ operations, both-side ODP, as the interval between the two posts
 * sweeps 0..6 ms (10 trials per point, min RNR NAK delay 1.28 ms, KNL).
 *
 * The signature: several-hundred-millisecond executions for intervals
 * inside the first READ's pending window (~0.1..4.5 ms), dropping back to
 * milliseconds outside it.
 */

#include <cstdio>
#include <string>

#include "pitfall/experiment.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

int
main(int argc, char** argv)
{
    const std::size_t trials =
        (argc > 1 && std::string(argv[1]) == "--quick") ? 3 : 10;

    std::printf("== Fig. 4: execution time vs interval "
                "(2 READs, both-side ODP, 10 trials) ==\n\n");
    TablePrinter table({"interval_ms", "avg_exec_s", "min_s", "max_s",
                        "P(timeout)%"});
    table.printHeader();

    for (double interval_ms = 0.0; interval_ms <= 6.01;
         interval_ms += 0.25) {
        std::size_t timeouts = 0;
        auto acc = runTrials(trials, [&](std::uint64_t seed) {
            MicroBenchConfig config;
            config.numOps = 2;
            config.interval = Time::ms(interval_ms);
            config.odpMode = OdpMode::BothSide;
            config.capture = false;
            MicroBenchmark bench(config, rnic::DeviceProfile::knl(), seed);
            auto r = bench.run();
            if (r.timedOut())
                ++timeouts;
            return r.executionTime.toSec();
        }, /*seed_base=*/static_cast<std::uint64_t>(interval_ms * 100));

        table.printRow({TablePrinter::fmt(interval_ms, 2),
                        TablePrinter::fmt(acc.mean(), 4),
                        TablePrinter::fmt(acc.min(), 4),
                        TablePrinter::fmt(acc.max(), 4),
                        TablePrinter::fmt(100.0 * timeouts / trials, 0)});
    }

    std::printf("\nPaper: executions of several hundred ms for intervals "
                "of ~0.1-4.5 ms; fast outside.\n");
    return 0;
}
