/**
 * @file
 * Paper Fig. 4: average execution time of the micro-benchmark with two
 * READ operations, both-side ODP, as the interval between the two posts
 * sweeps 0..6 ms (10 trials per point, min RNR NAK delay 1.28 ms, KNL).
 *
 * The signature: several-hundred-millisecond executions for intervals
 * inside the first READ's pending window (~0.1..4.5 ms), dropping back to
 * milliseconds outside it.
 */

#include "suite.hh"

#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace ibsim {
namespace bench {

void
registerFig4(exp::Registry& registry)
{
    registry.add(
        {"fig4", "execution time vs interval (2 READs, both-side ODP)",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(10, 3);

             exp::Sweep sweep;
             sweep.axis("interval_ms", exp::Sweep::range(0.0, 6.0, 0.25),
                        /*precision=*/2);

             auto result = ctx.runner("fig4").run(
                 sweep, trials,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     MicroBenchConfig config;
                     config.numOps = 2;
                     config.interval =
                         Time::ms(cell.num("interval_ms"));
                     config.odpMode = OdpMode::BothSide;
                     config.capture = false;
                     MicroBenchmark bench(
                         config, rnic::DeviceProfile::knl(), seed);
                     auto r = bench.run();
                     return exp::Metrics{}
                         .set("exec_s", r.executionTime.toSec())
                         .set("timeout", r.timedOut());
                 });

             auto sink = ctx.sink("fig4");
             sink.table(
                 "Fig. 4: execution time vs interval (2 READs, "
                 "both-side ODP, " + std::to_string(trials) + " trials)",
                 result,
                 {exp::col("exec_s", exp::Stat::Mean, 4, "avg_exec_s"),
                  exp::col("exec_s", exp::Stat::Min, 4, "min_s"),
                  exp::col("exec_s", exp::Stat::Max, 4, "max_s"),
                  exp::col("timeout", exp::Stat::PctMean, 0,
                           "P(timeout)%")});
             sink.note("Paper: executions of several hundred ms for "
                       "intervals of ~0.1-4.5 ms; fast outside.");
         }});
}

} // namespace bench
} // namespace ibsim
