/**
 * @file
 * The bench suite: every paper figure/table reproduction, registered by
 * name into an exp::Registry. Each bench_*.cc defines one register
 * function; registerAllBenches() wires them all, and is what both the
 * standalone binaries (standalone_main.cc) and the multiplexed
 * odp_bench_cli runner call.
 */

#ifndef IBSIM_BENCH_SUITE_HH
#define IBSIM_BENCH_SUITE_HH

#include "exp/registry.hh"

namespace ibsim {
namespace bench {

void registerTable1(exp::Registry& registry);
void registerFig1(exp::Registry& registry);
void registerFig2(exp::Registry& registry);
void registerFig4(exp::Registry& registry);
void registerFig5(exp::Registry& registry);
void registerFig6(exp::Registry& registry);
void registerFig7(exp::Registry& registry);
void registerFig8(exp::Registry& registry);
void registerFig9(exp::Registry& registry);
void registerFig11(exp::Registry& registry);
void registerFig12(exp::Registry& registry);
void registerFig13(exp::Registry& registry);
void registerAblationWorkarounds(exp::Registry& registry);
void registerAblationRegcache(exp::Registry& registry);
void registerAblationReliability(exp::Registry& registry);
void registerAblationOdpLatency(exp::Registry& registry);
void registerSimcoreMicro(exp::Registry& registry);
void registerChaosProbe(exp::Registry& registry);
void registerFloodCapacity(exp::Registry& registry);
void registerAtomicReplayThrash(exp::Registry& registry);
void registerScaleSmoke(exp::Registry& registry);
void registerFaultStorm(exp::Registry& registry);

/** Register the full suite, in paper order. */
void registerAllBenches(exp::Registry& registry);

} // namespace bench
} // namespace ibsim

#endif // IBSIM_BENCH_SUITE_HH
