/**
 * @file
 * Shared main() of every standalone bench binary. Each binary compiles
 * this file with -DIBSIM_BENCH_NAME="<name>" (see bench/CMakeLists.txt)
 * and runs exactly one suite entry with the common harness flags
 * (--quick, --jobs, --seed, --json, --csv).
 */

#include "exp/bench_main.hh"
#include "suite.hh"

#ifndef IBSIM_BENCH_NAME
#error "compile with -DIBSIM_BENCH_NAME=\"<bench>\""
#endif

int
main(int argc, char** argv)
{
    ibsim::exp::Registry registry;
    ibsim::bench::registerAllBenches(registry);
    return ibsim::exp::standaloneMain(argc, argv, registry,
                                      IBSIM_BENCH_NAME);
}
