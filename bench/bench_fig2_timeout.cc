/**
 * @file
 * Paper Fig. 2: measured timeout detection time T_o vs the requested Local
 * ACK Timeout exponent C_ack, on every system of Table I.
 *
 * Method (Sec. IV-B): connect a QP to a wrong destination LID so all
 * packets are lost, post one READ with C_retry = 7, time the abort with
 * IBV_WC_RETRY_EXC_ERR, and report T_o = t / 8. The theoretical
 * T_tr = 4.096 us * 2^C_ack and T_o = 2 * T_tr curves are printed
 * alongside.
 */

#include <cstdio>
#include <vector>

#include "pitfall/timeout_probe.hh"
#include "rnic/timeout.hh"

using namespace ibsim;

int
main()
{
    const auto systems = rnic::DeviceProfile::table1();

    std::printf("== Fig. 2: T_o (seconds) vs requested C_ack ==\n\n");
    std::printf("%-5s %-12s %-12s", "Cack", "T_tr(theory)", "T_o(theory)");
    for (const auto& p : systems) {
        // Short column label: first word of the system name + model.
        std::string label = p.systemName.substr(0, 10);
        std::printf(" %-12s", label.c_str());
    }
    std::printf("\n");

    for (std::uint8_t cack = 1; cack <= 21; ++cack) {
        const Time ttr = rnic::timeoutInterval(cack);
        std::printf("%-5u %-12.6f %-12.6f", cack, ttr.toSec(),
                    (ttr * 2.0).toSec());
        for (const auto& p : systems) {
            pitfall::TimeoutProbe probe(p);
            const auto r = probe.measure(cack, /*seed=*/cack);
            std::printf(" %-12.6f", r.detectedTimeout.toSec());
        }
        std::printf("\n");
    }

    std::printf("\nEstimated vendor minimum C_ack per system "
                "(from the measured floor):\n");
    for (const auto& p : systems) {
        pitfall::TimeoutProbe probe(p);
        const auto r = probe.measure(1);
        std::printf("  %-22s effective C_ack at request 1: %u "
                    "(T_o floor %s)\n",
                    p.systemName.c_str(), r.effectiveCack,
                    r.detectedTimeout.str().c_str());
    }
    return 0;
}
