/**
 * @file
 * Paper Fig. 2: measured timeout detection time T_o vs the requested Local
 * ACK Timeout exponent C_ack, on every system of Table I.
 *
 * Method (Sec. IV-B): connect a QP to a wrong destination LID so all
 * packets are lost, post one READ with C_retry = 7, time the abort with
 * IBV_WC_RETRY_EXC_ERR, and report T_o = t / 8. The theoretical
 * T_tr = 4.096 us * 2^C_ack and T_o = 2 * T_tr curves are printed
 * alongside as pseudo-systems.
 */

#include "suite.hh"

#include "pitfall/timeout_probe.hh"
#include "rnic/timeout.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

void
registerFig2(exp::Registry& registry)
{
    registry.add(
        {"fig2", "timeout detection time T_o vs requested C_ack",
         [](const exp::RunContext& ctx) {
             const auto systems = rnic::DeviceProfile::table1();

             std::vector<std::string> columns{"T_tr(theory)",
                                              "T_o(theory)"};
             for (const auto& p : systems)
                 columns.push_back(p.systemName.substr(0, 10));

             std::vector<double> cacks;
             for (int c = 1; c <= 21; ++c)
                 cacks.push_back(c);

             exp::Sweep sweep;
             sweep.axis("cack", cacks, 0)
                 .axis("system", columns);

             auto result = ctx.runner("fig2").run(
                 sweep, 1,
                 [&](const exp::Cell& cell, std::uint64_t seed) {
                     const auto cack = static_cast<std::uint8_t>(
                         cell.num("cack"));
                     const std::size_t sys =
                         cell.valueIndex("system");
                     double to_s = 0.0;
                     if (sys == 0) {
                         to_s = rnic::timeoutInterval(cack).toSec();
                     } else if (sys == 1) {
                         to_s =
                             (rnic::timeoutInterval(cack) * 2.0).toSec();
                     } else {
                         pitfall::TimeoutProbe probe(systems[sys - 2]);
                         to_s = probe.measure(cack, seed)
                                    .detectedTimeout.toSec();
                     }
                     return exp::Metrics{}.set("to_s", to_s);
                 });

             auto sink = ctx.sink("fig2");
             sink.pivot("Fig. 2: T_o (seconds) vs requested C_ack",
                        result, "cack", "system",
                        exp::col("to_s", exp::Stat::Mean, 6, "T_o_s"));

             sink.note("Estimated vendor minimum C_ack per system (from "
                       "the measured floor):");
             for (const auto& p : systems) {
                 pitfall::TimeoutProbe probe(p);
                 const auto r = probe.measure(1);
                 char line[160];
                 std::snprintf(line, sizeof(line),
                               "  %-22s effective C_ack at request 1: "
                               "%u (T_o floor %s)",
                               p.systemName.c_str(), r.effectiveCack,
                               r.detectedTimeout.str().c_str());
                 sink.note(line);
             }
         }});
}

} // namespace bench
} // namespace ibsim
