/**
 * @file
 * Paper Fig. 9: effect of the number of QPs on the micro-benchmark with
 * 8192 READ operations of 100 bytes (200 pages involved), C_ack = 18,
 * min RNR NAK delay 1.28 ms.
 *
 *  (a) execution time per ODP mode — the >10-QP knee and the drastic
 *      degradation of client-/both-side ODP (packet flood);
 *  (b) number of packets — the flood's hundreds-fold packet blow-up,
 *      client-side only.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "pitfall/experiment.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

int
main(int argc, char** argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const std::size_t trials = quick ? 1 : 3;
    // The op count is part of the experiment's geometry (the posting span
    // must outlast the damming windows, as on the real testbed), so
    // --quick only reduces trials.
    const std::size_t num_ops = 8192;

    const std::vector<std::size_t> qp_counts = {1,  2,  5,   10,  25,
                                                50, 100, 150, 200};
    const std::vector<OdpMode> modes = {OdpMode::None, OdpMode::ServerSide,
                                        OdpMode::ClientSide,
                                        OdpMode::BothSide};

    std::printf("== Fig. 9a/9b: exec time and packet count vs #QPs "
                "(%zu READs, 100 B) ==\n\n", num_ops);
    TablePrinter table({"mode", "qps", "exec_s", "packets_k", "rexmit_k",
                        "upd_fail", "timeouts"});
    table.printHeader();

    for (OdpMode mode : modes) {
        for (std::size_t qps : qp_counts) {
            Accumulator exec;
            Accumulator packets;
            Accumulator rexmits;
            Accumulator fails;
            Accumulator timeouts;
            for (std::size_t t = 0; t < trials; ++t) {
                MicroBenchConfig config;
                config.numOps = num_ops;
                config.numQps = qps;
                config.size = 100;
                config.interval = Time();  // back-to-back posts
                config.postOverhead = Time::ns(300);  // pipelined posting
                config.odpMode = mode;
                config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
                config.capture = false;  // fabric counters suffice
                config.waitLimit = Time::sec(600);
                MicroBenchmark bench(config, rnic::DeviceProfile::knl(),
                                     1000 + t);
                auto r = bench.run();
                exec.add(r.executionTime.toSec());
                packets.add(static_cast<double>(r.totalPackets) / 1e3);
                rexmits.add(static_cast<double>(r.retransmissions) / 1e3);
                fails.add(static_cast<double>(r.updateFailures));
                timeouts.add(static_cast<double>(r.timeouts));
            }
            table.printRow({odpModeName(mode), TablePrinter::fmt(
                                                   std::uint64_t(qps)),
                            TablePrinter::fmt(exec.mean(), 4),
                            TablePrinter::fmt(packets.mean(), 1),
                            TablePrinter::fmt(rexmits.mean(), 1),
                            TablePrinter::fmt(fails.mean(), 0),
                            TablePrinter::fmt(timeouts.mean(), 1)});
        }
        std::printf("\n");
    }

    std::printf("Paper: acceptable up to ~10 QPs, then drastic "
                "degradation (up to ~3000x) for client-/both-side ODP; "
                "packet counts grow hundreds-fold with client-side ODP "
                "only; server-side degrades via damming timeouts.\n");
    return 0;
}
