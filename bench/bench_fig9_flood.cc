/**
 * @file
 * Paper Fig. 9: effect of the number of QPs on the micro-benchmark with
 * 8192 READ operations of 100 bytes (200 pages involved), C_ack = 18,
 * min RNR NAK delay 1.28 ms.
 *
 *  (a) execution time per ODP mode — the >10-QP knee and the drastic
 *      degradation of client-/both-side ODP (packet flood);
 *  (b) number of packets — the flood's hundreds-fold packet blow-up,
 *      client-side only.
 */

#include "suite.hh"

#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace ibsim {
namespace bench {

void
registerFig9(exp::Registry& registry)
{
    registry.add(
        {"fig9", "exec time and packet count vs #QPs (packet flood)",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(3, 1);
             // The op count is part of the experiment's geometry (the
             // posting span must outlast the damming windows, as on the
             // real testbed), so --quick only reduces trials.
             const std::size_t num_ops = 8192;

             exp::Sweep sweep;
             sweep.axis("mode",
                        std::vector<std::string>{
                            odpModeName(OdpMode::None),
                            odpModeName(OdpMode::ServerSide),
                            odpModeName(OdpMode::ClientSide),
                            odpModeName(OdpMode::BothSide)})
                 .axis("qps",
                       {1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 150.0,
                        200.0},
                       0);

             auto result = ctx.runner("fig9").run(
                 sweep, trials,
                 [num_ops](const exp::Cell& cell, std::uint64_t seed) {
                     const OdpMode modes[] = {
                         OdpMode::None, OdpMode::ServerSide,
                         OdpMode::ClientSide, OdpMode::BothSide};
                     MicroBenchConfig config;
                     config.numOps = num_ops;
                     config.numQps =
                         static_cast<std::size_t>(cell.num("qps"));
                     config.size = 100;
                     config.interval = Time();  // back-to-back posts
                     config.postOverhead =
                         Time::ns(300);  // pipelined posting
                     config.odpMode = modes[cell.valueIndex("mode")];
                     config.qpConfig =
                         MicroBenchConfig::ucxDefaultConfig();
                     config.capture = false;  // fabric counters suffice
                     config.waitLimit = Time::sec(600);
                     MicroBenchmark bench(
                         config, rnic::DeviceProfile::knl(), seed);
                     auto r = bench.run();
                     return exp::Metrics{}
                         .set("exec_s", r.executionTime.toSec())
                         .set("packets_k",
                              static_cast<double>(r.totalPackets) / 1e3)
                         .set("rexmit_k",
                              static_cast<double>(r.retransmissions) /
                                  1e3)
                         .set("upd_fail",
                              static_cast<double>(r.updateFailures))
                         .set("timeouts",
                              static_cast<double>(r.timeouts));
                 });

             auto sink = ctx.sink("fig9");
             sink.table(
                 "Fig. 9a/9b: exec time and packet count vs #QPs (" +
                     std::to_string(num_ops) + " READs, 100 B)",
                 result,
                 {exp::col("exec_s", exp::Stat::Mean, 4, "exec_s"),
                  exp::col("packets_k", exp::Stat::Mean, 1, "packets_k"),
                  exp::col("rexmit_k", exp::Stat::Mean, 1, "rexmit_k"),
                  exp::col("upd_fail", exp::Stat::Mean, 0, "upd_fail"),
                  exp::col("timeouts", exp::Stat::Mean, 1, "timeouts")});
             sink.note(
                 "Paper: acceptable up to ~10 QPs, then drastic "
                 "degradation (up to ~3000x) for client-/both-side ODP; "
                 "packet counts grow hundreds-fold with client-side ODP "
                 "only; server-side degrades via damming timeouts.");
         }});
}

} // namespace bench
} // namespace ibsim
