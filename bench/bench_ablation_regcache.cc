/**
 * @file
 * Ablation: memory management strategies — the trade-off that motivates
 * ODP (paper Sec. I and Sec. VIII-A).
 *
 * A client WRITEs randomly-chosen buffers from a large pool to a server.
 * Strategies compared:
 *
 *   register-per-op : register + deregister around every operation
 *                     (the naive baseline of Frey & Alonso);
 *   pin-down cache  : LRU cache of pinned regions (Tezuka et al.) with
 *                     batched deregistration (Zhou et al.);
 *   pinned-all      : pre-pin the whole pool (fast, maximal memory);
 *   explicit ODP    : register once on demand, pay page faults instead.
 *
 * Reported: total time, management/fault overhead, and pinned bytes —
 * the runtime-vs-memory trade-off ODP aims to dissolve.
 */

#include "suite.hh"

#include <functional>
#include <memory>

#include "cluster/cluster.hh"
#include "mem/address_space.hh"
#include "regcache/registration_cache.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

constexpr std::uint64_t poolPages = 512;     // 2 MiB pool
constexpr std::uint64_t poolBytes = poolPages * mem::pageSize;
constexpr std::uint32_t opBytes = 256;

struct RunResult
{
    double totalMs = 0;
    double overheadMs = 0;  // registration or fault handling
    std::uint64_t pinnedPages = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;
};

/** Issue @p ops WRITEs of random pool buffers using a strategy functor. */
template <typename AcquireMr>
RunResult
runStrategy(std::size_t ops, std::uint64_t seed, AcquireMr&& acquire_mr,
            const std::function<double()>& overhead_ms,
            const std::function<std::uint64_t()>& pinned_pages)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, seed);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);

    const std::uint64_t pool = client.alloc(poolBytes);
    client.memory().touch(pool, poolBytes);  // data exists host-side
    const std::uint64_t dst = server.alloc(poolBytes);
    auto& smr = server.registerMemory(dst, poolBytes,
                                      verbs::AccessFlags::pinned());

    const Time start = cluster.now();
    for (std::size_t i = 0; i < ops; ++i) {
        const std::uint64_t page = static_cast<std::uint64_t>(
            cluster.rng().uniformInt(0, poolPages - 1));
        const std::uint64_t addr = pool + page * mem::pageSize;
        verbs::MemoryRegion& mr =
            acquire_mr(cluster, client, addr, opBytes);
        cqp.postWrite(addr, mr.lkey(), dst + page * mem::pageSize,
                      smr.rkey(), opBytes, i);
        cluster.runUntil(
            [&] { return ccq.totalCompletions() >= i + 1; },
            cluster.now() + Time::sec(5));
    }

    RunResult r;
    r.totalMs = (cluster.now() - start).toMs();
    r.overheadMs = overhead_ms();
    r.pinnedPages = pinned_pages();
    return r;
}

RunResult
runRegisterPerOp(std::size_t ops, std::uint64_t seed)
{
    const regcache::RegCacheConfig cost_model;  // shared cost constants
    Time mgmt;
    return runStrategy(
        ops, seed,
        [&](Cluster& cluster, Node& client, std::uint64_t addr,
            std::uint64_t len) -> verbs::MemoryRegion& {
            const Time cost = cost_model.registerBase +
                              cost_model.registerPerPage +
                              cost_model.deregisterBase +
                              cost_model.deregisterPerPage;
            mgmt += cost;
            cluster.advance(cost);
            auto& mr = client.registerMemory(
                addr - addr % mem::pageSize, mem::pageSize,
                verbs::AccessFlags::pinned());
            (void)len;
            return mr;
        },
        [&] { return mgmt.toMs(); }, [] { return 1ull; });
}

RunResult
runPinDownCache(std::size_t ops, std::uint64_t seed)
{
    std::unique_ptr<regcache::RegistrationCache> cache;
    auto r = runStrategy(
        ops, seed,
        [&](Cluster& cluster, Node& client, std::uint64_t addr,
            std::uint64_t len) -> verbs::MemoryRegion& {
            if (!cache) {
                regcache::RegCacheConfig config;
                config.capacityBytes = poolBytes / 4;
                cache = std::make_unique<regcache::RegistrationCache>(
                    client, cluster.events(), config);
            }
            return cache->acquire(addr, len);
        },
        [&] { return cache->stats().managementTime.toMs(); },
        [&] { return cache->pinnedBytes() / mem::pageSize; });
    r.cacheHits = cache->stats().hits;
    r.cacheMisses = cache->stats().misses;
    r.cacheEvictions = cache->stats().evictions;
    return r;
}

RunResult
runPinnedAll(std::size_t ops, std::uint64_t seed)
{
    const regcache::RegCacheConfig cost_model;
    verbs::MemoryRegion* pool_mr = nullptr;
    Time mgmt;
    return runStrategy(
        ops, seed,
        [&](Cluster& cluster, Node& client, std::uint64_t addr,
            std::uint64_t len) -> verbs::MemoryRegion& {
            (void)addr;
            (void)len;
            if (!pool_mr) {
                const Time cost =
                    cost_model.registerBase +
                    cost_model.registerPerPage *
                        static_cast<double>(poolPages);
                mgmt += cost;
                cluster.advance(cost);
                // The pool is the client's first allocation.
                pool_mr = &client.registerMemory(
                    0x10000000, poolBytes, verbs::AccessFlags::pinned());
            }
            return *pool_mr;
        },
        [&] { return mgmt.toMs(); }, [] { return poolPages; });
}

RunResult
runExplicitOdp(std::size_t ops, std::uint64_t seed)
{
    verbs::MemoryRegion* pool_mr = nullptr;
    Node* client_node = nullptr;
    return runStrategy(
        ops, seed,
        [&](Cluster&, Node& client, std::uint64_t addr,
            std::uint64_t len) -> verbs::MemoryRegion& {
            (void)addr;
            (void)len;
            client_node = &client;
            if (!pool_mr) {
                pool_mr = &client.registerMemory(
                    0x10000000, poolBytes, verbs::AccessFlags::odp());
            }
            return *pool_mr;
        },
        [&] {
            // Fault overhead estimate: resolved faults x mid-band
            // latency.
            return 0.625 * static_cast<double>(
                               client_node->driver()
                                   .stats()
                                   .faultsResolved);
        },
        [] { return 0ull; });
}

} // namespace

void
registerAblationRegcache(exp::Registry& registry)
{
    registry.add(
        {"ablation_regcache", "memory management strategy trade-offs",
         [](const exp::RunContext& ctx) {
             const std::size_t ops = ctx.trials(2000, 500);

             exp::Sweep sweep;
             sweep.axis("strategy",
                        std::vector<std::string>{
                            "register-per-op", "pin-down cache",
                            "pinned-all", "explicit ODP"});

             auto result = ctx.runner("ablation_regcache").run(
                 sweep, 1,
                 [ops](const exp::Cell& cell, std::uint64_t seed) {
                     RunResult r;
                     switch (cell.valueIndex("strategy")) {
                     case 0: r = runRegisterPerOp(ops, seed); break;
                     case 1: r = runPinDownCache(ops, seed); break;
                     case 2: r = runPinnedAll(ops, seed); break;
                     default: r = runExplicitOdp(ops, seed); break;
                     }
                     exp::Metrics m;
                     m.set("total_ms", r.totalMs)
                         .set("overhead_ms", r.overheadMs)
                         .set("pinned_pages",
                              static_cast<double>(r.pinnedPages));
                     if (cell.valueIndex("strategy") == 1) {
                         m.set("cache_hits",
                               static_cast<double>(r.cacheHits))
                             .set("cache_misses",
                                  static_cast<double>(r.cacheMisses))
                             .set("cache_evictions",
                                  static_cast<double>(
                                      r.cacheEvictions));
                     }
                     return m;
                 });

             auto sink = ctx.sink("ablation_regcache");
             sink.table(
                 "Ablation: memory management strategies (" +
                     std::to_string(ops) +
                     " random 256-B WRITEs over a " +
                     std::to_string(poolPages) + "-page pool)",
                 result,
                 {exp::col("total_ms", exp::Stat::Mean, 2, "total_ms"),
                  exp::col("overhead_ms", exp::Stat::Mean, 2,
                           "overhead_ms"),
                  exp::col("pinned_pages", exp::Stat::Mean, 0,
                           "pinned_pages")});

             const auto& cache_cell = result.cells[1];
             if (cache_cell.hasMetric("cache_hits")) {
                 char line[160];
                 std::snprintf(
                     line, sizeof(line),
                     "    (cache: %.0f hits, %.0f misses, %.0f "
                     "evictions)",
                     cache_cell.metric("cache_hits").mean(),
                     cache_cell.metric("cache_misses").mean(),
                     cache_cell.metric("cache_evictions").mean());
                 sink.note(line);
             }
             sink.note(
                 "The classic trade-off (paper Sec. I): per-op "
                 "registration pays pinning on the\ncritical path; "
                 "caches trade pinned memory for hit rate; ODP pins "
                 "nothing and\npays page faults instead -- until the "
                 "pitfalls strike (see the other benches).");
         }});
}

} // namespace bench
} // namespace ibsim
