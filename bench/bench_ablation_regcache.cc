/**
 * @file
 * Ablation: memory management strategies — the trade-off that motivates
 * ODP (paper Sec. I and Sec. VIII-A).
 *
 * A client WRITEs randomly-chosen buffers from a large pool to a server.
 * Strategies compared:
 *
 *   register-per-op : register + deregister around every operation
 *                     (the naive baseline of Frey & Alonso);
 *   pin-down cache  : LRU cache of pinned regions (Tezuka et al.) with
 *                     batched deregistration (Zhou et al.);
 *   pinned-all      : pre-pin the whole pool (fast, maximal memory);
 *   explicit ODP    : register once on demand, pay page faults instead.
 *
 * Reported: total time, management/fault overhead, and pinned bytes —
 * the runtime-vs-memory trade-off ODP aims to dissolve.
 */

#include <cstdio>
#include <string>

#include "cluster/cluster.hh"
#include "mem/address_space.hh"
#include "pitfall/experiment.hh"
#include "regcache/registration_cache.hh"

using namespace ibsim;
using ibsim::pitfall::TablePrinter;

namespace {

constexpr std::uint64_t poolPages = 512;     // 2 MiB pool
constexpr std::uint64_t poolBytes = poolPages * mem::pageSize;
constexpr std::uint32_t opBytes = 256;

struct RunResult
{
    double totalMs = 0;
    double overheadMs = 0;  // registration or fault handling
    std::uint64_t pinnedPages = 0;
};

/** Issue @p ops WRITEs of random pool buffers using a strategy functor. */
template <typename AcquireMr>
RunResult
runStrategy(std::size_t ops, std::uint64_t seed, AcquireMr&& acquire_mr,
            const std::function<double()>& overhead_ms,
            const std::function<std::uint64_t()>& pinned_pages)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, seed);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);

    const std::uint64_t pool = client.alloc(poolBytes);
    client.memory().touch(pool, poolBytes);  // data exists host-side
    const std::uint64_t dst = server.alloc(poolBytes);
    auto& smr = server.registerMemory(dst, poolBytes,
                                      verbs::AccessFlags::pinned());

    const Time start = cluster.now();
    for (std::size_t i = 0; i < ops; ++i) {
        const std::uint64_t page = static_cast<std::uint64_t>(
            cluster.rng().uniformInt(0, poolPages - 1));
        const std::uint64_t addr = pool + page * mem::pageSize;
        verbs::MemoryRegion& mr =
            acquire_mr(cluster, client, addr, opBytes);
        cqp.postWrite(addr, mr.lkey(), dst + page * mem::pageSize,
                      smr.rkey(), opBytes, i);
        cluster.runUntil(
            [&] { return ccq.totalCompletions() >= i + 1; },
            cluster.now() + Time::sec(5));
    }

    RunResult r;
    r.totalMs = (cluster.now() - start).toMs();
    r.overheadMs = overhead_ms();
    r.pinnedPages = pinned_pages();
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::size_t ops =
        (argc > 1 && std::string(argv[1]) == "--quick") ? 500 : 2000;

    std::printf("== Ablation: memory management strategies "
                "(%zu random 256-B WRITEs over a %llu-page pool) ==\n\n",
                ops, static_cast<unsigned long long>(poolPages));
    TablePrinter table({"strategy", "total_ms", "overhead_ms",
                        "pinned_pages"});
    table.printHeader();

    regcache::RegCacheConfig cost_model;  // shared cost constants

    // 1. register + deregister around every operation.
    {
        Time mgmt;
        auto r = runStrategy(
            ops, 1,
            [&](Cluster& cluster, Node& client, std::uint64_t addr,
                std::uint64_t len) -> verbs::MemoryRegion& {
                const Time cost =
                    cost_model.registerBase +
                    cost_model.registerPerPage + cost_model.deregisterBase +
                    cost_model.deregisterPerPage;
                mgmt += cost;
                cluster.advance(cost);
                auto& mr = client.registerMemory(
                    addr - addr % mem::pageSize, mem::pageSize,
                    verbs::AccessFlags::pinned());
                (void)len;
                return mr;
            },
            [&] { return mgmt.toMs(); }, [] { return 1ull; });
        table.printRow({"register-per-op",
                        TablePrinter::fmt(r.totalMs, 2),
                        TablePrinter::fmt(r.overheadMs, 2),
                        TablePrinter::fmt(r.pinnedPages)});
    }

    // 2. pin-down cache at 1/4 of the pool.
    {
        std::unique_ptr<regcache::RegistrationCache> cache;
        auto r = runStrategy(
            ops, 1,
            [&](Cluster& cluster, Node& client, std::uint64_t addr,
                std::uint64_t len) -> verbs::MemoryRegion& {
                if (!cache) {
                    auto config = cost_model;
                    config.capacityBytes = poolBytes / 4;
                    cache = std::make_unique<
                        regcache::RegistrationCache>(
                        client, cluster.events(), config);
                }
                return cache->acquire(addr, len);
            },
            [&] { return cache->stats().managementTime.toMs(); },
            [&] { return cache->pinnedBytes() / mem::pageSize; });
        char label[64];
        std::snprintf(label, sizeof(label), "pin-down cache");
        table.printRow({label, TablePrinter::fmt(r.totalMs, 2),
                        TablePrinter::fmt(r.overheadMs, 2),
                        TablePrinter::fmt(r.pinnedPages)});
        std::printf("    (cache: %llu hits, %llu misses, %llu "
                    "evictions)\n",
                    static_cast<unsigned long long>(
                        cache->stats().hits),
                    static_cast<unsigned long long>(
                        cache->stats().misses),
                    static_cast<unsigned long long>(
                        cache->stats().evictions));
    }

    // 3. pre-pin the whole pool.
    {
        verbs::MemoryRegion* pool_mr = nullptr;
        Time mgmt;
        auto r = runStrategy(
            ops, 1,
            [&](Cluster& cluster, Node& client, std::uint64_t addr,
                std::uint64_t len) -> verbs::MemoryRegion& {
                (void)addr;
                (void)len;
                if (!pool_mr) {
                    const Time cost =
                        cost_model.registerBase +
                        cost_model.registerPerPage *
                            static_cast<double>(poolPages);
                    mgmt += cost;
                    cluster.advance(cost);
                    // The pool is the client's first allocation.
                    pool_mr = &client.registerMemory(
                        0x10000000, poolBytes,
                        verbs::AccessFlags::pinned());
                }
                return *pool_mr;
            },
            [&] { return mgmt.toMs(); }, [] { return poolPages; });
        table.printRow({"pinned-all", TablePrinter::fmt(r.totalMs, 2),
                        TablePrinter::fmt(r.overheadMs, 2),
                        TablePrinter::fmt(r.pinnedPages)});
    }

    // 4. explicit ODP over the pool: no pinning, faults on first access.
    {
        verbs::MemoryRegion* pool_mr = nullptr;
        Node* client_node = nullptr;
        auto r = runStrategy(
            ops, 1,
            [&](Cluster&, Node& client, std::uint64_t addr,
                std::uint64_t len) -> verbs::MemoryRegion& {
                (void)addr;
                (void)len;
                client_node = &client;
                if (!pool_mr) {
                    pool_mr = &client.registerMemory(
                        0x10000000, poolBytes,
                        verbs::AccessFlags::odp());
                }
                return *pool_mr;
            },
            [&] {
                // Fault overhead estimate: resolved faults x mid-band
                // latency.
                return 0.625 * static_cast<double>(
                                   client_node->driver()
                                       .stats()
                                       .faultsResolved);
            },
            [] { return 0ull; });
        table.printRow({"explicit ODP", TablePrinter::fmt(r.totalMs, 2),
                        TablePrinter::fmt(r.overheadMs, 2),
                        TablePrinter::fmt(r.pinnedPages)});
    }

    std::printf("\nThe classic trade-off (paper Sec. I): per-op "
                "registration pays pinning on the\ncritical path; caches "
                "trade pinned memory for hit rate; ODP pins nothing and\n"
                "pays page faults instead -- until the pitfalls strike "
                "(see the other benches).\n");
    return 0;
}
