/**
 * @file
 * Paper Fig. 6: probability of timeout (out of 10 trials) vs the interval
 * between two READs.
 *
 *  (a) server-side ODP with minimal RNR NAK delay of 0.64 / 1.28 /
 *      10.24 ms — the damming window tracks the RNR wait (~3.5x delay);
 *  (b) client-side ODP with 1.28 ms — the window is the ~0.5 ms blind
 *      retransmission gap.
 */

#include "suite.hh"

#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace ibsim {
namespace bench {

namespace {

exp::Metrics
timeoutTrial(OdpMode mode, Time rnr_delay, Time interval,
             std::uint64_t seed)
{
    MicroBenchConfig config;
    config.numOps = 2;
    config.interval = interval;
    config.odpMode = mode;
    config.qpConfig.minRnrNakDelay = rnr_delay;
    config.capture = false;
    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), seed);
    return exp::Metrics{}.set("timeout", bench.run().timedOut());
}

} // namespace

void
registerFig6(exp::Registry& registry)
{
    registry.add(
        {"fig6", "P(timeout) vs interval (packet damming probability)",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(10, 4);
             auto sink = ctx.sink("fig6");

             exp::Sweep sweep_a;
             sweep_a.axis("rnr_ms", {0.64, 1.28, 10.24}, 2)
                 .axis("interval_ms", exp::Sweep::range(0.0, 6.0, 0.25),
                       2);
             auto result_a = ctx.runner("fig6").run(
                 sweep_a, trials,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     return timeoutTrial(
                         OdpMode::ServerSide,
                         Time::ms(cell.num("rnr_ms")),
                         Time::ms(cell.num("interval_ms")), seed);
                 });
             sink.pivot("Fig. 6a: P(timeout) % vs interval, server-side "
                        "ODP",
                        result_a, "interval_ms", "rnr_ms",
                        exp::col("timeout", exp::Stat::PctMean, 0,
                                 "P(timeout)%"));

             exp::Sweep sweep_b;
             sweep_b.axis("interval_ms", exp::Sweep::range(0.0, 2.0, 0.1),
                         2);
             auto result_b = ctx.runner("fig6b").run(
                 sweep_b, trials,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     return timeoutTrial(
                         OdpMode::ClientSide, Time::ms(1.28),
                         Time::ms(cell.num("interval_ms")), seed);
                 });
             sink.table("Fig. 6b: P(timeout) % vs interval, client-side "
                        "ODP (rnr=1.28 ms)",
                        result_b,
                        {exp::col("timeout", exp::Stat::PctMean, 0,
                                  "P(timeout)%")});

             sink.note("Paper: 6a cut-offs follow ~3.5x the RNR delay "
                       "(2.2 / 4.5 / >6 ms); 6b cuts off at ~0.5 ms.");
         }});
}

} // namespace bench
} // namespace ibsim
