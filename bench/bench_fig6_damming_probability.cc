/**
 * @file
 * Paper Fig. 6: probability of timeout (out of 10 trials) vs the interval
 * between two READs.
 *
 *  (a) server-side ODP with minimal RNR NAK delay of 0.64 / 1.28 /
 *      10.24 ms — the damming window tracks the RNR wait (~3.5x delay);
 *  (b) client-side ODP with 1.28 ms — the window is the ~0.5 ms blind
 *      retransmission gap.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "pitfall/experiment.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

double
timeoutProbability(OdpMode mode, Time rnr_delay, Time interval,
                   std::size_t trials, std::uint64_t seed_base)
{
    return probabilityPercent(trials, [&](std::uint64_t seed) {
        MicroBenchConfig config;
        config.numOps = 2;
        config.interval = interval;
        config.odpMode = mode;
        config.qpConfig.minRnrNakDelay = rnr_delay;
        config.capture = false;
        MicroBenchmark bench(config, rnic::DeviceProfile::knl(), seed);
        return bench.run().timedOut();
    }, seed_base);
}

} // namespace

int
main(int argc, char** argv)
{
    const std::size_t trials =
        (argc > 1 && std::string(argv[1]) == "--quick") ? 4 : 10;

    const std::vector<double> delays_ms = {0.64, 1.28, 10.24};

    std::printf("== Fig. 6a: P(timeout) %% vs interval, server-side ODP "
                "==\n\n");
    TablePrinter ta({"interval_ms", "rnr=0.64ms", "rnr=1.28ms",
                     "rnr=10.24ms"});
    ta.printHeader();
    for (double interval_ms = 0.0; interval_ms <= 6.01;
         interval_ms += 0.25) {
        std::vector<std::string> cells{TablePrinter::fmt(interval_ms, 2)};
        for (double d : delays_ms) {
            cells.push_back(TablePrinter::fmt(
                timeoutProbability(OdpMode::ServerSide, Time::ms(d),
                                   Time::ms(interval_ms), trials,
                                   static_cast<std::uint64_t>(
                                       d * 1000 + interval_ms * 40)),
                0));
        }
        ta.printRow(cells);
    }

    std::printf("\n== Fig. 6b: P(timeout) %% vs interval, client-side ODP "
                "(rnr=1.28 ms) ==\n\n");
    TablePrinter tb({"interval_ms", "P(timeout)%"});
    tb.printHeader();
    for (double interval_ms = 0.0; interval_ms <= 2.01;
         interval_ms += 0.1) {
        tb.printRow({TablePrinter::fmt(interval_ms, 2),
                     TablePrinter::fmt(
                         timeoutProbability(OdpMode::ClientSide,
                                            Time::ms(1.28),
                                            Time::ms(interval_ms), trials,
                                            static_cast<std::uint64_t>(
                                                7000 + interval_ms * 40)),
                         0)});
    }

    std::printf("\nPaper: 6a cut-offs follow ~3.5x the RNR delay "
                "(2.2 / 4.5 / >6 ms); 6b cuts off at ~0.5 ms.\n");
    return 0;
}
