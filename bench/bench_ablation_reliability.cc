/**
 * @file
 * Ablation: hardware vs software reliability under packet loss — the
 * design point behind the paper's lessons (Sec. VIII-C, Sec. IX-A).
 *
 * The same message stream runs over (a) RC, where a lost packet costs one
 * vendor-floored transport timeout (>= ~537 ms on these devices), and
 * (b) UC plus a software retry timer, where recovery costs the tunable
 * software timeout (~1 ms). The gap is the reason packet damming hurts so
 * much, and the reason software-level timeouts are the paper's first
 * workaround family.
 */

#include <cstdio>
#include <string>

#include "cluster/cluster.hh"
#include "net/loss.hh"
#include "pitfall/experiment.hh"
#include "swrel/soft_reliable.hh"

using namespace ibsim;
using ibsim::pitfall::TablePrinter;

namespace {

constexpr std::size_t messages = 500;
constexpr std::uint32_t messageBytes = 64;

double
runRc(double loss_rate, std::uint64_t seed)
{
    Cluster cluster(rnic::DeviceProfile::knl(), 2, seed);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    verbs::QpConfig config;
    config.cack = 1;  // clamps to the 537 ms vendor floor
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq, config);

    const auto src = a.alloc(4096);
    const auto dst = b.alloc(messages * messageBytes);
    a.touch(src, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, messages * messageBytes,
                                 verbs::AccessFlags::pinned());

    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(loss_rate));

    // Synchronous RPC-style messaging: one outstanding write at a time,
    // so a lost packet has no follow-up traffic to provoke a NAK -- only
    // the transport timeout recovers it.
    const Time start = cluster.now();
    for (std::size_t i = 0; i < messages; ++i) {
        aqp.postWrite(src, amr.lkey(), dst + i * messageBytes,
                      bmr.rkey(), messageBytes, i);
        if (!cluster.runUntil(
                [&] {
                    return acq.totalCompletions() >= i + 1 ||
                           aqp.inError();
                },
                cluster.now() + Time::sec(60)))
            break;
        if (aqp.inError())
            break;
        cluster.advance(Time::us(10));
    }
    return (cluster.now() - start).toSec();
}

double
runSoft(double loss_rate, std::uint64_t seed)
{
    Cluster cluster(rnic::DeviceProfile::knl(), 2, seed);
    swrel::SoftChannelConfig config;
    config.retryTimeout = Time::ms(1);
    config.maxRetries = 50;
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1), config);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(loss_rate));

    // Same synchronous pattern over the software channel.
    const Time start = cluster.now();
    const std::vector<std::uint8_t> payload(messageBytes, 0xAB);
    for (std::size_t i = 0; i < messages; ++i) {
        const auto seq = channel.send(payload);
        if (!cluster.runUntil([&] { return channel.acked(seq); },
                              cluster.now() + Time::sec(60)))
            break;
        cluster.advance(Time::us(10));
    }
    return (cluster.now() - start).toSec();
}

} // namespace

int
main(int argc, char** argv)
{
    const std::size_t trials =
        (argc > 1 && std::string(argv[1]) == "--quick") ? 2 : 5;

    std::printf("== Ablation: hardware (RC) vs software (UC + retry "
                "timer) reliability ==\n   (%zu writes of %u B; RC "
                "C_ack=1 -> 537 ms floor; software timer 1 ms)\n\n",
                messages, messageBytes);
    TablePrinter table({"loss_rate", "RC_total_s", "soft_total_s",
                        "RC/soft"});
    table.printHeader();

    for (double loss : {0.0, 0.001, 0.005, 0.02}) {
        Accumulator rc;
        Accumulator soft;
        for (std::size_t t = 1; t <= trials; ++t) {
            rc.add(runRc(loss, t));
            soft.add(runSoft(loss, t));
        }
        table.printRow(
            {TablePrinter::fmt(loss, 3), TablePrinter::fmt(rc.mean(), 3),
             TablePrinter::fmt(soft.mean(), 3),
             TablePrinter::fmt(soft.mean() > 0
                                   ? rc.mean() / soft.mean()
                                   : 0.0,
                               1)});
    }

    std::printf("\nEvery lost packet costs RC a full vendor-floored "
                "timeout; the software timer\nrecovers in milliseconds "
                "(Koop et al.'s case for software reliability, and why\n"
                "the paper's damming losses are so expensive).\n");
    return 0;
}
