/**
 * @file
 * Ablation: hardware vs software reliability under packet loss — the
 * design point behind the paper's lessons (Sec. VIII-C, Sec. IX-A).
 *
 * The same message stream runs over (a) RC, where a lost packet costs one
 * vendor-floored transport timeout (>= ~537 ms on these devices), and
 * (b) UC plus a software retry timer, where recovery costs the tunable
 * software timeout (~1 ms). The gap is the reason packet damming hurts so
 * much, and the reason software-level timeouts are the paper's first
 * workaround family.
 */

#include "suite.hh"

#include <memory>

#include "cluster/cluster.hh"
#include "net/loss.hh"
#include "swrel/soft_reliable.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

constexpr std::size_t messages = 500;
constexpr std::uint32_t messageBytes = 64;

double
runRc(double loss_rate, std::uint64_t seed)
{
    Cluster cluster(rnic::DeviceProfile::knl(), 2, seed);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    verbs::QpConfig config;
    config.cack = 1;  // clamps to the 537 ms vendor floor
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq, config);

    const auto src = a.alloc(4096);
    const auto dst = b.alloc(messages * messageBytes);
    a.touch(src, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, messages * messageBytes,
                                 verbs::AccessFlags::pinned());

    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(loss_rate));

    // Synchronous RPC-style messaging: one outstanding write at a time,
    // so a lost packet has no follow-up traffic to provoke a NAK -- only
    // the transport timeout recovers it.
    const Time start = cluster.now();
    for (std::size_t i = 0; i < messages; ++i) {
        aqp.postWrite(src, amr.lkey(), dst + i * messageBytes,
                      bmr.rkey(), messageBytes, i);
        if (!cluster.runUntil(
                [&] {
                    return acq.totalCompletions() >= i + 1 ||
                           aqp.inError();
                },
                cluster.now() + Time::sec(60)))
            break;
        if (aqp.inError())
            break;
        cluster.advance(Time::us(10));
    }
    return (cluster.now() - start).toSec();
}

double
runSoft(double loss_rate, std::uint64_t seed)
{
    Cluster cluster(rnic::DeviceProfile::knl(), 2, seed);
    swrel::SoftChannelConfig config;
    config.retryTimeout = Time::ms(1);
    config.maxRetries = 50;
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1), config);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(loss_rate));

    // Same synchronous pattern over the software channel.
    const Time start = cluster.now();
    const std::vector<std::uint8_t> payload(messageBytes, 0xAB);
    for (std::size_t i = 0; i < messages; ++i) {
        const auto seq = channel.send(payload);
        if (!cluster.runUntil([&] { return channel.acked(seq); },
                              cluster.now() + Time::sec(60)))
            break;
        cluster.advance(Time::us(10));
    }
    return (cluster.now() - start).toSec();
}

} // namespace

void
registerAblationReliability(exp::Registry& registry)
{
    registry.add(
        {"ablation_reliability",
         "hardware (RC) vs software (UC + retry timer) reliability",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(5, 2);

             exp::Sweep sweep;
             sweep.axis("loss_rate", {0.0, 0.001, 0.005, 0.02}, 3);

             // Both channels run inside one trial with the same seed, so
             // the RC/soft ratio compares identical loss patterns.
             auto result = ctx.runner("ablation_reliability").run(
                 sweep, trials,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     const double loss = cell.num("loss_rate");
                     const double rc = runRc(loss, seed);
                     const double soft = runSoft(loss, seed);
                     return exp::Metrics{}
                         .set("rc_total_s", rc)
                         .set("soft_total_s", soft)
                         .set("ratio", soft > 0 ? rc / soft : 0.0);
                 });

             auto sink = ctx.sink("ablation_reliability");
             char head[200];
             std::snprintf(
                 head, sizeof(head),
                 "Ablation: hardware (RC) vs software (UC + retry "
                 "timer) reliability\n   (%zu writes of %u B; RC "
                 "C_ack=1 -> 537 ms floor; software timer 1 ms)",
                 messages, messageBytes);
             auto columns = std::vector<exp::MetricColumn>{
                 exp::col("rc_total_s", exp::Stat::Mean, 3,
                          "RC_total_s"),
                 exp::col("soft_total_s", exp::Stat::Mean, 3,
                          "soft_total_s"),
                 exp::col("ratio", exp::Stat::Mean, 1, "RC/soft")};
             sink.table(head, result, columns);
             sink.note(
                 "Every lost packet costs RC a full vendor-floored "
                 "timeout; the software timer\nrecovers in milliseconds "
                 "(Koop et al.'s case for software reliability, and "
                 "why\nthe paper's damming losses are so expensive).");
         }});
}

} // namespace bench
} // namespace ibsim
