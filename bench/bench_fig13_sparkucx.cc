/**
 * @file
 * Paper Fig. 13 (table): SparkUCX example execution times with ODP
 * disabled vs enabled, across the paper's system/example rows and their QP
 * counts. The enable/disable ratio is the headline: up to ~6.5x on the
 * rows where shuffle dominates and thousands of QPs flood.
 *
 * Times are in model units (the paper's ODP-disabled column scaled 1:10
 * feeds the compute parameter); the ratio column is the comparable
 * quantity.
 */

#include "suite.hh"

#include "apps/mini_shuffle.hh"

using namespace ibsim;
using namespace ibsim::apps;

namespace ibsim {
namespace bench {

void
registerFig13(exp::Registry& registry)
{
    registry.add(
        {"fig13", "SparkUCX examples, ODP disabled vs enabled",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(3, 1);
             const auto rows = ShuffleRow::table13();

             std::vector<std::string> labels;
             for (const auto& row : rows)
                 labels.push_back(row.example.substr(0, 10) + "/" +
                                  row.system);

             exp::Sweep sweep;
             sweep.axis("job", labels);

             // One trial runs the ODP-disabled and -enabled job with the
             // same seed, so the ratio is paired per trial.
             auto result = ctx.runner("fig13").run(
                 sweep, trials,
                 [&rows](const exp::Cell& cell, std::uint64_t seed) {
                     const auto& row = rows[cell.valueIndex("job")];
                     auto rb = MiniShuffle(row, /*odp=*/false).run(seed);
                     auto ro = MiniShuffle(row, /*odp=*/true).run(seed);
                     exp::Metrics m;
                     m.set("qps", static_cast<double>(row.qps));
                     if (rb.completed)
                         m.set("disable_s", rb.executionTime.toSec());
                     if (ro.completed) {
                         m.set("enable_s", ro.executionTime.toSec());
                         m.set("upd_fail", static_cast<double>(
                                               ro.updateFailures));
                         m.set("stall_s", ro.longestWave.toSec());
                     }
                     if (rb.completed && ro.completed &&
                         rb.executionTime.toSec() > 0)
                         m.set("ratio", ro.executionTime.toSec() /
                                            rb.executionTime.toSec());
                     return m;
                 });

             auto sink = ctx.sink("fig13");
             sink.table(
                 "Fig. 13: SparkUCX examples, ODP disabled vs enabled "
                 "(" + std::to_string(trials) + " trials)",
                 result,
                 {exp::col("qps", exp::Stat::Mean, 0, "QPs"),
                  exp::col("disable_s", exp::Stat::Mean, 2, "disable_s"),
                  exp::col("enable_s", exp::Stat::Mean, 2, "enable_s"),
                  exp::col("ratio", exp::Stat::Mean, 2, "ratio"),
                  exp::col("upd_fail", exp::Stat::Mean, 0, "upd_fail"),
                  exp::col("stall_s", exp::Stat::Max, 2,
                           "stall_max_s")});
             sink.note(
                 "Paper ratios -- SparkTC: 1.56 / 6.46 / 1.01 / 1.42; "
                 "Recommendation: 1.51 / 3.59 / 1.07 / 1.18; "
                 "RankingMetrics: 1.30 / 2.38 / 1.37 / 2.37.\n"
                 "Jobs with intermittent multi-second stalls exhibit "
                 "the paper's 'stuck for a few seconds' flood "
                 "signature.");
         }});
}

} // namespace bench
} // namespace ibsim
