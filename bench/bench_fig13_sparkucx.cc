/**
 * @file
 * Paper Fig. 13 (table): SparkUCX example execution times with ODP
 * disabled vs enabled, across the paper's system/example rows and their QP
 * counts. The enable/disable ratio is the headline: up to ~6.5x on the
 * rows where shuffle dominates and thousands of QPs flood.
 *
 * Times are in model units (the paper's ODP-disabled column scaled 1:10
 * feeds the compute parameter); the ratio column is the comparable
 * quantity.
 */

#include <cstdio>
#include <string>

#include "apps/mini_shuffle.hh"
#include "pitfall/experiment.hh"
#include "simcore/stats.hh"

using namespace ibsim;
using namespace ibsim::apps;
using ibsim::pitfall::TablePrinter;

int
main(int argc, char** argv)
{
    const std::size_t trials =
        (argc > 1 && std::string(argv[1]) == "--quick") ? 1 : 3;

    std::printf("== Fig. 13: SparkUCX examples, ODP disabled vs enabled "
                "(%zu trials) ==\n\n", trials);
    TablePrinter table({"example", "system", "QPs", "disable_s",
                        "enable_s", "ratio", "upd_fail", "stall_max_s"},
                       /*column_width=*/16);
    table.printHeader();

    for (const auto& row : ShuffleRow::table13()) {
        Accumulator base;
        Accumulator odp;
        Accumulator fails;
        Accumulator stall;
        for (std::size_t t = 0; t < trials; ++t) {
            auto rb = MiniShuffle(row, /*odp=*/false).run(t + 1);
            auto ro = MiniShuffle(row, /*odp=*/true).run(t + 1);
            if (rb.completed)
                base.add(rb.executionTime.toSec());
            if (ro.completed) {
                odp.add(ro.executionTime.toSec());
                fails.add(static_cast<double>(ro.updateFailures));
                stall.add(ro.longestWave.toSec());
            }
        }
        const double ratio =
            base.mean() > 0 ? odp.mean() / base.mean() : 0.0;
        table.printRow({row.example.substr(0, 15), row.system,
                        TablePrinter::fmt(std::uint64_t(row.qps)),
                        TablePrinter::fmt(base.mean(), 2),
                        TablePrinter::fmt(odp.mean(), 2),
                        TablePrinter::fmt(ratio, 2),
                        TablePrinter::fmt(fails.mean(), 0),
                        TablePrinter::fmt(stall.max(), 2)});
    }

    std::printf("\nPaper ratios -- SparkTC: 1.56 / 6.46 / 1.01 / 1.42; "
                "Recommendation: 1.51 / 3.59 / 1.07 / 1.18; "
                "RankingMetrics: 1.30 / 2.38 / 1.37 / 2.37.\n"
                "Jobs with intermittent multi-second stalls exhibit the "
                "paper's 'stuck for a few seconds' flood signature.\n");
    return 0;
}
