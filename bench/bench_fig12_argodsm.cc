/**
 * @file
 * Paper Fig. 12: execution time distribution of the minimal ArgoDSM
 * benchmark (argo::init + argo::finalize, 10 MB) with ODP disabled and
 * enabled, on the KNL and Reedbush-H system models; 100 trials each.
 *
 * With ODP the distribution splits into two groups: page-fault overhead
 * only, and page faults plus one packet-damming transport timeout from the
 * global-lock READ + SEND sequence.
 */

#include <cstdio>
#include <string>

#include "apps/mini_dsm.hh"
#include "simcore/stats.hh"

using namespace ibsim;
using namespace ibsim::apps;

namespace {

void
runSystem(const DsmSystemParams& system, std::size_t trials)
{
    std::printf("---- %s ----\n", system.name.c_str());
    for (bool odp : {false, true}) {
        DsmConfig config;
        config.odp = odp;
        MiniDsm dsm(system, config);

        Accumulator exec;
        std::size_t timed_out = 0;
        for (std::size_t t = 0; t < trials; ++t) {
            auto r = dsm.run(/*seed=*/t + 1);
            if (!r.completed)
                continue;
            exec.add(r.executionTime.toSec());
            if (r.timeouts > 0)
                ++timed_out;
        }

        std::printf("\n%s ODP (avg: %.2f s, min %.2f, max %.2f; "
                    "timeout in %zu/%zu trials)\n",
                    odp ? "w/ " : "w/o", exec.mean(), exec.min(),
                    exec.max(), timed_out, trials);
        Histogram hist(0.0, exec.max() * 1.05 + 0.1, 20);
        for (double v : exec.samples())
            hist.add(v);
        std::printf("%s", hist.str(50).c_str());
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    const std::size_t trials =
        (argc > 1 && std::string(argv[1]) == "--quick") ? 20 : 100;

    std::printf("== Fig. 12: ArgoDSM init/finalize execution time "
                "distribution (%zu trials) ==\n\n", trials);
    runSystem(DsmSystemParams::knl(), trials);
    runSystem(DsmSystemParams::reedbushH(), trials);
    std::printf("Paper: KNL 2.28 s -> 3.12 s avg, Reedbush-H 0.50 s -> "
                "0.92 s avg; the w/-ODP histograms are bimodal, the slow "
                "group carrying the timeout.\n");
    return 0;
}
