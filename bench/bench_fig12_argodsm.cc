/**
 * @file
 * Paper Fig. 12: execution time distribution of the minimal ArgoDSM
 * benchmark (argo::init + argo::finalize, 10 MB) with ODP disabled and
 * enabled, on the KNL and Reedbush-H system models; 100 trials each.
 *
 * With ODP the distribution splits into two groups: page-fault overhead
 * only, and page faults plus one packet-damming transport timeout from the
 * global-lock READ + SEND sequence.
 */

#include "suite.hh"

#include "apps/mini_dsm.hh"
#include "simcore/stats.hh"

using namespace ibsim;
using namespace ibsim::apps;

namespace ibsim {
namespace bench {

void
registerFig12(exp::Registry& registry)
{
    registry.add(
        {"fig12", "ArgoDSM init/finalize time distribution (bimodal)",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(100, 20);
             auto sink = ctx.sink("fig12");
             sink.note("== Fig. 12: ArgoDSM init/finalize execution "
                       "time distribution (" +
                       std::to_string(trials) + " trials) ==");
             sink.blank();

             exp::Sweep sweep;
             sweep.axis("system",
                        std::vector<std::string>{"KNL", "Reedbush-H"})
                 .axis("odp", std::vector<std::string>{"off", "on"});

             auto result = ctx.runner("fig12").run(
                 sweep, trials,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     const DsmSystemParams system =
                         cell.valueIndex("system") == 0
                             ? DsmSystemParams::knl()
                             : DsmSystemParams::reedbushH();
                     DsmConfig config;
                     config.odp = cell.str("odp") == "on";
                     MiniDsm dsm(system, config);
                     auto r = dsm.run(seed);
                     exp::Metrics m;
                     m.set("completed", r.completed);
                     if (r.completed) {
                         m.set("exec_s", r.executionTime.toSec());
                         m.set("timeout", r.timeouts > 0);
                     }
                     return m;
                 });

             sink.table(
                 "", result,
                 {exp::col("exec_s", exp::Stat::Mean, 2, "avg_s"),
                  exp::col("exec_s", exp::Stat::Min, 2, "min_s"),
                  exp::col("exec_s", exp::Stat::Max, 2, "max_s"),
                  exp::col("timeout", exp::Stat::Sum, 0, "timed_out"),
                  exp::col("completed", exp::Stat::Count, 0, "trials")});

             // The histograms, from the retained per-trial samples.
             for (const exp::CellStats& cell : result.cells) {
                 const Accumulator& exec = cell.metric("exec_s");
                 sink.note("---- " + cell.str("system") + ", ODP " +
                           cell.str("odp") + " ----");
                 Histogram hist(0.0, exec.max() * 1.05 + 0.1, 20);
                 for (double v : exec.samples())
                     hist.add(v);
                 sink.note(hist.str(50));
             }

             sink.note("Paper: KNL 2.28 s -> 3.12 s avg, Reedbush-H "
                       "0.50 s -> 0.92 s avg; the w/-ODP histograms are "
                       "bimodal, the slow group carrying the timeout.");
         }});
}

} // namespace bench
} // namespace ibsim
