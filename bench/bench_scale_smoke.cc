/**
 * @file
 * Island-count scalability smoke: the raw sharded kernel at 1000+
 * islands.
 *
 * The cluster benches stop at 64 machines x a few planes; ROADMAP's
 * north star ("as fast as the hardware allows") also needs the *kernel
 * itself* to stay cheap when the topology is three orders of magnitude
 * wider than the set of islands that actually have work. This bench
 * drives a fixed population of ping-pong message pairs across up to
 * 1024 islands — no RNIC, no fabric, just EventQueues, channel clocks
 * and a minimal BarrierAgent — and reports wall-clock ns per executed
 * event for each scheduler:
 *
 *   sched=static  worker-pinned island blocks (ScheduleMode::Static)
 *   sched=scan    Stealing with the round-two O(islands) claim scan
 *                 (StealPolicy::ScanLegacy)
 *   sched=ready   Stealing with the sharded ready queue (the default)
 *
 * The pair count does not grow with the topology, so at 1024 islands
 * only a small fraction of islands is runnable in any window — the
 * sparse regime the ready queue exists for: the legacy claim scan
 * still walks every island on every worker pass while the ready queue
 * touches only woken ones. Idle islands have no declared edges, so
 * their clocks jump to the round limit in one step — their entire cost
 * is whatever the scheduler spends discovering they are done.
 *
 * sched=ready at islands=1024 is the row the CI gate
 * watches: its jobs=4 cell must beat the jobs=1 reference
 * (speedup_vs_seq >= 1.0 in check_bench_regression.py), and its
 * ns_per_item trend is recorded in BENCH_simcore.json next to scan's
 * for the ready-vs-scan comparison.
 */

#include "suite.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <vector>

#include "simcore/cross_channel.hh"
#include "simcore/sharded_kernel.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

using Clock = std::chrono::steady_clock;

struct ScaleResult
{
    std::uint64_t events = 0;
    double wallNs = 0;
    bool completed = false;
    std::uint64_t rounds = 0;
    std::uint64_t roundsSkipped = 0;
    std::uint64_t steals = 0;
    std::uint64_t readyDepth = 0;
    std::uint64_t drainAborts = 0;
};

/**
 * Deterministic per-event compute (splitmix64 rounds): stands in for
 * the RNIC datapath work a real island does per event, so the jobs
 * axis measures scheduling against a realistic work grain instead of
 * bare counter increments.
 */
std::uint64_t
mixWork(std::uint64_t x, unsigned iters)
{
    for (unsigned k = 0; k < iters; ++k) {
        x += 0x9e3779b97f4a7c15ull;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
    }
    return x;
}

/**
 * The synthetic workload: disjoint island pairs ping-ponging a message
 * one lookahead per hop, each hop doing one mixWork grain and
 * forwarding its running state — so the checksum over all pairs is
 * schedule-invariant and any lost or duplicated hop shows up as
 * completed=0. Pairs are independent (their channel clocks reference
 * only each other), so jobs=4 has min(4, pairs)-way parallelism.
 */
struct PingAgent : ShardedKernel::BarrierAgent
{
    struct Msg
    {
        std::int64_t at = 0;
        std::uint32_t hops = 0;
        std::uint64_t state = 0;
    };
    using Channel = CrossChannel<Msg>;

    PingAgent(ShardedKernel& kernel, std::vector<std::size_t> partner,
              unsigned work_iters)
        : kernel_(kernel), partner_(std::move(partner)),
          workIters_(work_iters), in_(kernel.islandCount())
    {
        kernel.addBarrierAgent(this);
    }

    ~PingAgent() { kernel_.removeBarrierAgent(this); }

    /** Bounce one message from @p from to its partner island. */
    void
    hop(std::size_t from, std::uint32_t hops, std::uint64_t state)
    {
        const std::size_t to = partner_[from];
        const Time at = kernel_.island(from).now() + kernel_.lookahead();
        // One channel per destination: the sole producer is the
        // partner island, so push order (and thus the run) is
        // deterministic at any worker count.
        in_[to].push(at.toNs(), Msg{at.toNs(), hops, state});
    }

    std::uint64_t
    flushInbound(std::size_t island, Time /*now*/, Time horizon) override
    {
        std::vector<Msg> batch;
        in_[island].drainUpTo(
            horizon.toNs(), [](const Msg& m) { return m.at; }, batch);
        for (const Msg& m : batch) {
            kernel_.island(island).schedule(
                Time::fromNs(m.at), [this, island, m] {
                    received_.fetch_add(1, std::memory_order_relaxed);
                    const std::uint64_t next =
                        mixWork(m.state, workIters_);
                    checksum_.fetch_xor(next,
                                        std::memory_order_relaxed);
                    if (m.hops > 0)
                        hop(island, m.hops - 1, next);
                });
        }
        return batch.size();
    }

    Time
    inboundEarliest(std::size_t island) override
    {
        const std::int64_t k = in_[island].minKey();
        return k == Channel::kEmpty ? Time::max() : Time::fromNs(k);
    }

    std::size_t
    inboundPending(std::size_t island) override
    {
        return in_[island].size();
    }

    ShardedKernel& kernel_;
    const std::vector<std::size_t> partner_;
    const unsigned workIters_;
    /** in_[dst]; deque because CrossChannel must never move. */
    std::deque<Channel> in_;
    std::atomic<std::uint64_t> received_{0};
    std::atomic<std::uint64_t> checksum_{0};
};

ScaleResult
runScaleTrial(std::size_t islands, unsigned jobs, ScheduleMode mode,
              StealPolicy policy, std::uint64_t seed)
{
    // 32 pairs regardless of topology size: at 64 islands every island
    // is busy, at 1024 only 6% are — the scan-vs-ready separation
    // grows with the axis while the event count (and thus
    // ns_per_item's denominator) stays constant.
    constexpr std::uint32_t kPairs = 32;
    constexpr std::uint32_t kHops = 384;
    constexpr unsigned kWorkIters = 400;

    ShardedKernel kernel(Time::us(1), jobs, mode);
    kernel.setStealPolicy(policy);
    for (std::size_t i = 0; i < islands; ++i)
        kernel.addIsland();
    // Pairs spread evenly so static's contiguous worker blocks stay
    // balanced; only pair members get edges — idle islands have no
    // in-neighbors (infinite safe horizon, one clock jump per round).
    std::vector<std::size_t> partner(islands, 0);
    std::vector<std::size_t> left(kPairs);
    for (std::uint32_t p = 0; p < kPairs; ++p) {
        const std::size_t a = (islands * p) / kPairs;
        const std::size_t b = a + 1 < islands ? a + 1 : 0;
        left[p] = a;
        partner[a] = b;
        partner[b] = a;
        kernel.declareEdge(a, b);
        kernel.declareEdge(b, a);
    }
    PingAgent ring(kernel, std::move(partner), kWorkIters);

    // Staggered pseudo-random (seed-deterministic) starts inside the
    // first window so pairs do not run in lockstep.
    for (std::uint32_t p = 0; p < kPairs; ++p) {
        const std::size_t at = left[p];
        const std::uint64_t mix = (p * 2654435761u + seed) % 900;
        kernel.island(at).schedule(
            Time::ns(static_cast<std::int64_t>(mix)),
            [&ring, at, p, seed] { ring.hop(at, kHops, p ^ seed); });
    }

    const auto start = Clock::now();
    const bool drained = kernel.run(Time::sec(1));
    const auto stop = Clock::now();

    const std::uint64_t expected =
        static_cast<std::uint64_t>(kPairs) * (kHops + 1);
    ScaleResult result;
    result.events = kernel.executed();
    result.wallNs =
        static_cast<double>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(stop - start)
                                .count());
    result.completed =
        drained &&
        ring.received_.load(std::memory_order_relaxed) == expected;
    const auto ks = kernel.kernelStats();
    result.rounds = ks.barriers;
    result.roundsSkipped = ks.roundsSkipped;
    result.steals = ks.steals;
    result.readyDepth = ks.maxReadyQueueDepth;
    result.drainAborts = ks.drainAborts;
    return result;
}

/** Same env-override idiom as bench_flood_capacity's axisFromEnv. */
std::vector<double>
axisFromEnv(const char* name, std::vector<double> fallback)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return fallback;
    std::vector<double> out;
    char* cursor = nullptr;
    for (double v = std::strtod(raw, &cursor); cursor != raw;
         v = std::strtod(raw, &cursor)) {
        out.push_back(v);
        raw = *cursor == ',' ? cursor + 1 : cursor;
    }
    return out.empty() ? fallback : out;
}

} // namespace

void
registerScaleSmoke(exp::Registry& registry)
{
    registry.add(
        {"scale_smoke",
         "sharded-kernel scheduler cost at 64..1024 islands",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(3, 1);

             exp::RunContext local = ctx;
             if (local.jsonPath.empty() &&
                 std::getenv("IBSIM_JSON") == nullptr) {
                 local.jsonPath = "BENCH_simcore.json";
             }

             exp::Sweep sweep;
             sweep
                 .axis("islands",
                       axisFromEnv("IBSIM_SCALE_ISLANDS",
                                   {64.0, 256.0, 1024.0}),
                       0)
                 .axis("sched", std::vector<std::string>{"static", "scan",
                                                         "ready"})
                 .axis("jobs",
                       axisFromEnv("IBSIM_SCALE_JOBS", {1.0, 4.0}), 0);

             auto result = local.runner("scale_smoke").run(
                 sweep, trials,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     const auto islands =
                         static_cast<std::size_t>(cell.num("islands"));
                     const auto jobs =
                         static_cast<unsigned>(cell.num("jobs"));
                     const std::size_t sched = cell.valueIndex("sched");
                     const ScheduleMode mode =
                         sched == 0 ? ScheduleMode::Static
                                    : ScheduleMode::Stealing;
                     const StealPolicy policy =
                         sched == 1 ? StealPolicy::ScanLegacy
                                    : StealPolicy::ReadyQueue;
                     const ScaleResult r = runScaleTrial(
                         islands, jobs, mode, policy, seed);
                     const double perEvent =
                         r.events > 0
                             ? r.wallNs / static_cast<double>(r.events)
                             : 0.0;
                     return exp::Metrics{}
                         .set("ns_per_item", perEvent)
                         .set("events_k",
                              static_cast<double>(r.events) / 1e3)
                         .set("rounds", static_cast<double>(r.rounds))
                         .set("rounds_skipped",
                              static_cast<double>(r.roundsSkipped))
                         .set("steals", static_cast<double>(r.steals))
                         .set("ready_depth",
                              static_cast<double>(r.readyDepth))
                         .set("drain_aborts",
                              static_cast<double>(r.drainAborts))
                         .set("completed", r.completed ? 1.0 : 0.0);
                 });

             auto sink = local.sink("scale_smoke");
             sink.table(
                 "Scheduler cost on a synthetic 64..1024-island "
                 "topology (wall clock)",
                 result,
                 {exp::col("ns_per_item", exp::Stat::Mean, 1, "ns/event"),
                  exp::col("events_k", exp::Stat::Mean, 1, "events_k"),
                  exp::col("rounds", exp::Stat::Mean, 0, "rounds"),
                  exp::col("rounds_skipped", exp::Stat::Mean, 0,
                           "skipped"),
                  exp::col("steals", exp::Stat::Mean, 0, "steals"),
                  exp::col("ready_depth", exp::Stat::Mean, 0, "ready_q"),
                  exp::col("completed", exp::Stat::Mean, 2,
                           "completed")});
             sink.note(
                 "Raw ShardedKernel, no RNIC datapath: 32 island pairs "
                 "ping-ponging a message,\none lookahead per hop with a "
                 "fixed compute grain per event; islands without "
                 "a\npair are idle. sched=scan is the round-two "
                 "O(islands) claim scan kept as a\nreference; "
                 "sched=ready is the sharded ready queue. At "
                 "islands=1024 the ready\nrows are the CI scalability "
                 "gate (jobs=4 must beat jobs=1).");
         }});
}

} // namespace bench
} // namespace ibsim
