/**
 * @file
 * Paper Figs. 10 & 11: the flood experiment's memory layout and the number
 * of completed operations per page over time.
 *
 * 128 QPs, 32-byte messages (so 128 operations pack exactly one page),
 * client-side ODP. With 128 operations (one page) most operations complete
 * right after the fault resolves (~1 ms) but the first ~30 stay unaware of
 * the resolution for several more milliseconds; with 512 operations (four
 * pages) the staircase stretches to hundreds of milliseconds.
 */

#include <cstdio>
#include <vector>

#include "mem/address_space.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

void
runOne(std::size_t num_ops)
{
    MicroBenchConfig config;
    config.numOps = num_ops;
    config.numQps = 128;
    config.size = 32;
    config.interval = Time::us(8);
    config.odpMode = OdpMode::ClientSide;
    config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
    config.capture = false;

    // Pin the fault latency near the top of the common band (the paper's
    // Fig. 11a run resolved its fault at ~1 ms).
    auto profile = rnic::DeviceProfile::knl();
    profile.faultTiming.faultLatencyMin = Time::us(780);
    profile.faultTiming.faultLatencyMax = Time::us(820);

    MicroBenchmark bench(config, profile, /*seed=*/3);
    auto r = bench.run();

    const std::size_t pages =
        (num_ops * config.size + mem::pageSize - 1) / mem::pageSize;
    std::printf("---- %zu operations (%zu page%s) ----\n", num_ops, pages,
                pages == 1 ? "" : "s");

    // Completion timeline: how many ops of each page finished by time t.
    std::vector<Time> checkpoints;
    const Time end = r.executionTime;
    for (int i = 1; i <= 24; ++i)
        checkpoints.push_back(end * (static_cast<double>(i) / 24.0));

    std::printf("%-12s", "time");
    for (std::size_t p = 0; p < pages; ++p)
        std::printf(" page%-4zu", p);
    std::printf("\n");
    for (const Time& t : checkpoints) {
        std::printf("%-12s", t.str().c_str());
        for (std::size_t p = 0; p < pages; ++p) {
            std::size_t done = 0;
            for (std::size_t i = 0; i < num_ops; ++i) {
                const std::size_t page = i * config.size / mem::pageSize;
                if (page == p && r.completionTimes[i] <= t)
                    ++done;
            }
            std::printf(" %-8zu", done);
        }
        std::printf("\n");
    }
    std::printf("execution=%s update_failures=%llu rexmits=%llu\n\n",
                r.executionTime.str().c_str(),
                static_cast<unsigned long long>(r.updateFailures),
                static_cast<unsigned long long>(r.retransmissions));
}

} // namespace

int
main()
{
    std::printf("== Fig. 10: memory layout ==\n\n"
                "  page p holds ops [128p .. 128p+127]; op i uses QP "
                "(i %% 128) at offset 32*i --\n  every page is shared by "
                "all 128 QPs.\n\n");
    std::printf("== Fig. 11: completed operations per page over time "
                "(128 QPs, 32 B, client ODP) ==\n\n");
    runOne(128);
    runOne(512);
    std::printf("Paper: 11a -- completions start at ~1 ms but the first "
                "~30 ops stall ~5 ms more;\n11b -- with 4 pages the "
                "per-page staircase stretches to hundreds of ms.\n");
    return 0;
}
