/**
 * @file
 * Paper Figs. 10 & 11: the flood experiment's memory layout and the number
 * of completed operations per page over time.
 *
 * 128 QPs, 32-byte messages (so 128 operations pack exactly one page),
 * client-side ODP. With 128 operations (one page) most operations complete
 * right after the fault resolves (~1 ms) but the first ~30 stay unaware of
 * the resolution for several more milliseconds; with 512 operations (four
 * pages) the staircase stretches to hundreds of milliseconds.
 */

#include "suite.hh"

#include "mem/address_space.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace ibsim {
namespace bench {

namespace {

MicroBenchConfig
fig11Config(std::size_t num_ops)
{
    MicroBenchConfig config;
    config.numOps = num_ops;
    config.numQps = 128;
    config.size = 32;
    config.interval = Time::us(8);
    config.odpMode = OdpMode::ClientSide;
    config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
    config.capture = false;
    return config;
}

rnic::DeviceProfile
fig11Profile()
{
    // Pin the fault latency near the top of the common band (the paper's
    // Fig. 11a run resolved its fault at ~1 ms).
    auto profile = rnic::DeviceProfile::knl();
    profile.faultTiming.faultLatencyMin = Time::us(780);
    profile.faultTiming.faultLatencyMax = Time::us(820);
    return profile;
}

void
renderStaircase(exp::ResultSink& sink, std::size_t num_ops,
                std::uint64_t seed)
{
    const MicroBenchConfig config = fig11Config(num_ops);
    MicroBenchmark bench(config, fig11Profile(), seed);
    auto r = bench.run();

    const std::size_t pages =
        (num_ops * config.size + mem::pageSize - 1) / mem::pageSize;
    char line[512];
    std::snprintf(line, sizeof(line),
                  "---- %zu operations (%zu page%s) ----", num_ops,
                  pages, pages == 1 ? "" : "s");
    sink.note(line);

    // Completion timeline: how many ops of each page finished by time t.
    std::vector<Time> checkpoints;
    const Time end = r.executionTime;
    for (int i = 1; i <= 24; ++i)
        checkpoints.push_back(end * (static_cast<double>(i) / 24.0));

    std::string header = "time        ";
    for (std::size_t p = 0; p < pages; ++p) {
        char cell[24];
        std::snprintf(cell, sizeof(cell), " page%-4zu", p);
        header += cell;
    }
    sink.note(header);
    for (const Time& t : checkpoints) {
        std::snprintf(line, sizeof(line), "%-12s", t.str().c_str());
        std::string row = line;
        for (std::size_t p = 0; p < pages; ++p) {
            std::size_t done = 0;
            for (std::size_t i = 0; i < num_ops; ++i) {
                const std::size_t page = i * config.size / mem::pageSize;
                if (page == p && r.completionTimes[i] <= t)
                    ++done;
            }
            char cell[24];
            std::snprintf(cell, sizeof(cell), " %-8zu", done);
            row += cell;
        }
        sink.note(row);
    }
    std::snprintf(line, sizeof(line),
                  "execution=%s update_failures=%llu rexmits=%llu",
                  r.executionTime.str().c_str(),
                  static_cast<unsigned long long>(r.updateFailures),
                  static_cast<unsigned long long>(r.retransmissions));
    sink.note(line);
    sink.blank();
}

} // namespace

void
registerFig11(exp::Registry& registry)
{
    registry.add(
        {"fig11", "completed operations per page over time (flood)",
         [](const exp::RunContext& ctx) {
             auto sink = ctx.sink("fig11");
             sink.note(
                 "== Fig. 10: memory layout ==\n\n"
                 "  page p holds ops [128p .. 128p+127]; op i uses QP "
                 "(i % 128) at offset 32*i --\n  every page is shared "
                 "by all 128 QPs.\n");
             sink.note("== Fig. 11: completed operations per page over "
                       "time (128 QPs, 32 B, client ODP) ==");
             sink.blank();

             const exp::SeedStream seeds("fig11", ctx.userSeed);

             exp::Sweep sweep;
             sweep.axis("ops", {128.0, 512.0}, 0);

             // Summary metrics through the runner (parallel, JSON).
             auto result = ctx.runner("fig11").run(
                 sweep, 1,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     const auto num_ops = static_cast<std::size_t>(
                         cell.num("ops"));
                     MicroBenchmark bench(fig11Config(num_ops),
                                          fig11Profile(), seed);
                     auto r = bench.run();
                     return exp::Metrics{}
                         .set("exec_s", r.executionTime.toSec())
                         .set("upd_fail",
                              static_cast<double>(r.updateFailures))
                         .set("rexmits",
                              static_cast<double>(r.retransmissions));
                 });

             // The staircase renderings, same seeds as the JSON rows.
             renderStaircase(sink, 128, seeds.trialSeed(0, 0));
             renderStaircase(sink, 512, seeds.trialSeed(1, 0));

             sink.jsonOnly("fig11", result);
             sink.note("Paper: 11a -- completions start at ~1 ms but "
                       "the first ~30 ops stall ~5 ms more;\n11b -- "
                       "with 4 pages the per-page staircase stretches "
                       "to hundreds of ms.");
         }});
}

} // namespace bench
} // namespace ibsim
