/**
 * @file
 * Atomic replay-cache thrash: duplication storms vs. the responder's
 * atomic response resources, swept Table-I style across the paper's
 * devices.
 *
 * The IBA contract behind DeviceProfile::atomicReplayDepth: a responder
 * retains the last N atomic results so a retransmitted request is
 * answered from the cache instead of re-executed, and a requester keeps
 * its atomic window at or below N so the record is always still there.
 * This bench prices that contract. Each cell runs a fetch-add stream
 * against one Table-I device with the replay cache at depth 1 vs 128 —
 * the requester window clamped to the advertised depth — under a
 * duplication storm (30% of packets cloned, delayed clones, a few
 * percent real drops to force genuine timeout retransmissions). Depth 1
 * serializes the stream on top of the vendor's timeout floor; depth 128
 * pipelines it. The invariant oracle (A1/A2 exactly-once families)
 * rides along, and the final counter value is checked against the
 * number of adds: count_drift and violations must both be 0 in every
 * cell — re-execution of a duplicate atomic is a transport bug, not a
 * measurement.
 */

#include "suite.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/chaos_engine.hh"
#include "chaos/invariant_monitor.hh"
#include "cluster/cluster.hh"
#include "rnic/device_profile.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

constexpr std::size_t addsPerTrial = 240;
constexpr std::uint64_t landBytes = 16 * 1024;

exp::Metrics
runThrash(const rnic::DeviceProfile& device, std::size_t depth,
          std::uint64_t seed)
{
    const auto wallStart = std::chrono::steady_clock::now();
    auto profile = device;
    profile.atomicReplayDepth = depth;
    Cluster cluster(profile, 2, seed);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);

    const auto land = a.alloc(landBytes);
    const auto counter = b.alloc(4096);
    a.touch(land, landBytes);
    b.touch(counter, 4096);
    auto& amr =
        a.registerMemory(land, landBytes, verbs::AccessFlags::pinned());
    auto& bmr =
        b.registerMemory(counter, 4096, verbs::AccessFlags::pinned());

    // The storm: clone nearly a third of all packets, float the clones
    // for up to 50us so they land as stale out-of-window replays, and
    // drop a few percent outright so the requester's own timeout path
    // produces genuine retransmissions that MUST be served from the
    // cache (the drop pays the vendor's detection-time floor, which is
    // what spreads the Table-I rows apart).
    chaos::ChaosConfig cfg;
    cfg.seed = seed;
    cfg.dupRate = 0.3;
    cfg.delayRate = 0.2;
    cfg.delayMax = Time::us(50);
    cfg.dropRate = 0.02;
    chaos::ChaosEngine engine(cluster.events(), cfg);
    engine.install(cluster.fabric());

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watch(a.rnic(), aqp.context());
    monitor.watch(b.rnic(), bqp.context());

    // The requester side of the IBA contract: never more atomics in
    // flight than the responder retains results for. Depth 1 is a
    // one-at-a-time stream; deeper caches allow a pipelined window.
    const std::size_t window = std::min<std::size_t>(depth, 16);
    const Time start = cluster.now();
    std::size_t posted = 0;
    bool completed = true;
    while (acq.totalCompletions() < addsPerTrial) {
        while (posted < addsPerTrial &&
               posted - acq.totalCompletions() < window) {
            aqp.postFetchAdd(land + (posted % 1024) * 8, amr.lkey(),
                             counter, bmr.rkey(), /*add=*/1,
                             posted + 1);
            ++posted;
        }
        const auto target = acq.totalCompletions() + 1;
        if (!cluster.runUntil(
                [&] { return acq.totalCompletions() >= target; },
                cluster.now() + Time::sec(600))) {
            completed = false;
            break;
        }
    }
    cluster.advance(Time::ms(2));
    monitor.finalCheck();

    // Exactly-once, checked against host memory: every duplicate the
    // storm injected must have been answered from the replay cache, so
    // the counter holds exactly one increment per posted add.
    const auto bytes = b.memory().read(counter, 8);
    std::uint64_t finalValue = 0;
    std::memcpy(&finalValue, bytes.data(), 8);
    const double drift =
        static_cast<double>(finalValue) - static_cast<double>(posted);

    const double wallNs =
        static_cast<double>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() -
                                wallStart)
                                .count());
    return exp::Metrics{}
        .set("total_s", (cluster.now() - start).toSec())
        .set("ns_per_packet",
             wallNs / static_cast<double>(
                          std::max<std::uint64_t>(
                              1, monitor.packetsObserved())))
        .set("completed", completed)
        .set("count_drift", drift)
        .set("violations",
             static_cast<double>(monitor.violationCount()))
        .set("retransmissions",
             static_cast<double>(aqp.stats().retransmissions))
        .set("injected",
             static_cast<double>(cluster.fabric().totalInjected()))
        .set("dropped",
             static_cast<double>(cluster.fabric().totalDropped()));
}

} // namespace

void
registerAtomicReplayThrash(exp::Registry& registry)
{
    registry.add(
        {"atomic_replay_thrash",
         "atomic replay-cache thrash: dup storms at depth 1 vs 128 per "
         "device",
         [](const exp::RunContext& ctx) {
             // 6 trials (3 quick): cell 15's wall clock is dominated by
             // a seed-sensitive retransmission tail, and at 2 trials its
             // ns_per_packet stddev reached ~85% of the mean — far too
             // noisy for the regression gate (which also skips
             // high-variance baselines, see check_bench_regression.py).
             const std::size_t trials = ctx.trials(6, 3);
             const auto systems = rnic::DeviceProfile::table1();

             std::vector<std::string> names;
             for (const auto& p : systems)
                 names.push_back(p.systemName);

             exp::Sweep sweep;
             sweep.axis("system", names);
             sweep.axis("replay_depth", std::vector<double>{1, 128}, 0);

             auto result = ctx.runner("atomic_replay_thrash")
                               .run(sweep, trials,
                                    [&](const exp::Cell& cell,
                                        std::uint64_t seed) {
                                        return runThrash(
                                            systems[cell.valueIndex(
                                                "system")],
                                            static_cast<std::size_t>(
                                                cell.num(
                                                    "replay_depth")),
                                            seed);
                                    });

             auto sink = ctx.sink("atomic_replay_thrash");
             auto columns = std::vector<exp::MetricColumn>{
                 exp::col("total_s", exp::Stat::Mean, 4, "total_s"),
                 exp::col("ns_per_packet", exp::Stat::Mean, 1, "ns/pkt"),
                 exp::col("retransmissions", exp::Stat::Mean, 1,
                          "rexmits"),
                 exp::col("injected", exp::Stat::Mean, 1, "injected"),
                 exp::col("dropped", exp::Stat::Mean, 1, "dropped"),
                 exp::col("completed", exp::Stat::PctMean, 0,
                          "completed%"),
                 exp::col("count_drift", exp::Stat::Sum, 0, "drift"),
                 exp::col("violations", exp::Stat::Sum, 0,
                          "violations")};
             sink.table(
                 "Atomic replay-cache thrash: 240 fetch-adds under a "
                 "duplication storm,\n   window clamped to the "
                 "advertised depth (drift and violations must be 0)",
                 result, columns);
             sink.note(
                 "Depth 1 serializes the atomic stream (one in flight) "
                 "and every dropped\nresponse pays the vendor timeout "
                 "floor with nothing pipelined behind it;\ndepth 128 "
                 "absorbs the same storm with a 16-deep window. drift "
                 "is the final\ncounter value minus the adds posted — "
                 "any nonzero means a duplicate atomic\nwas re-executed "
                 "instead of served from the replay cache (A1/A2 also "
                 "audit\nthe wire).");
         }});
}

} // namespace bench
} // namespace ibsim
