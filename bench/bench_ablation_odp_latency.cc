/**
 * @file
 * Ablation: ODP vs pinned registration — latency and bandwidth, cold and
 * warm (the Li et al. characterization the paper builds on, refs [19],
 * [20], plus the RNR-tuning observation of Sec. IX-A).
 *
 * Cold = first network touch of each page (faults under ODP); warm =
 * pages already mapped. Receiver-side prefetch (ibv_advise_mr) is the
 * third column — Li et al. found it recovers most of the gap.
 */

#include "suite.hh"

#include "cluster/cluster.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

struct Sample
{
    double coldUs = 0;
    double warmUs = 0;
};

/** Mean READ latency over @p count buffers of @p size bytes. */
Sample
measure(bool odp, bool prefetch, std::uint32_t size, std::size_t count,
        std::uint64_t seed, double rnr_delay_ms)
{
    Cluster cluster(rnic::DeviceProfile::knl(), 2, seed);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();
    verbs::QpConfig config;
    config.cack = 18;
    config.minRnrNakDelay = Time::ms(rnr_delay_ms);
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq, config);

    const std::uint64_t stride =
        ((size + mem::pageSize - 1) / mem::pageSize) * mem::pageSize;
    const std::uint64_t area = stride * count;
    const auto src = server.alloc(area);
    const auto dst = client.alloc(area);
    server.memory().touch(src, area);  // data exists host-side
    auto& smr = server.registerMemory(
        src, area,
        odp ? verbs::AccessFlags::odp() : verbs::AccessFlags::pinned());
    auto& cmr = client.registerMemory(dst, area,
                                      verbs::AccessFlags::pinned());

    if (prefetch) {
        server.prefetch(smr, src, area);
        cluster.advance(Time::ms(5));
    }

    Sample sample;
    std::uint64_t done = 0;
    for (int round = 0; round < 2; ++round) {
        const Time start = cluster.now();
        for (std::size_t i = 0; i < count; ++i) {
            cqp.postRead(dst + i * stride, cmr.lkey(), src + i * stride,
                         smr.rkey(), size, done + i);
            cluster.runUntil(
                [&] { return ccq.totalCompletions() >= done + i + 1; },
                cluster.now() + Time::sec(10));
        }
        done += count;
        const double us =
            (cluster.now() - start).toUs() / static_cast<double>(count);
        if (round == 0)
            sample.coldUs = us;
        else
            sample.warmUs = us;
    }
    return sample;
}

} // namespace

void
registerAblationOdpLatency(exp::Registry& registry)
{
    registry.add(
        {"ablation_odp_latency",
         "ODP vs pinned READ latency, cold and warm",
         [](const exp::RunContext& ctx) {
             const std::size_t count = ctx.trials(64, 16);

             exp::Sweep sweep;
             sweep.axis("size_B", {64.0, 1024.0, 16384.0}, 0)
                 .axis("mode",
                       std::vector<std::string>{"pinned", "ODP",
                                                "ODP+prefetch",
                                                "ODP+minRNR"});

             auto result = ctx.runner("ablation_odp_latency").run(
                 sweep, 1,
                 [count](const exp::Cell& cell, std::uint64_t seed) {
                     const auto size = static_cast<std::uint32_t>(
                         cell.num("size_B"));
                     Sample s;
                     switch (cell.valueIndex("mode")) {
                     case 0:
                         s = measure(false, false, size, count, seed,
                                     1.28);
                         break;
                     case 1:
                         s = measure(true, false, size, count, seed,
                                     1.28);
                         break;
                     case 2:
                         s = measure(true, true, size, count, seed,
                                     1.28);
                         break;
                     default:
                         s = measure(true, false, size, count, seed,
                                     0.01);
                         break;
                     }
                     return exp::Metrics{}
                         .set("cold_us", s.coldUs)
                         .set("warm_us", s.warmUs)
                         .set("cold_warm_ratio",
                              s.warmUs > 0 ? s.coldUs / s.warmUs : 0);
                 });

             auto sink = ctx.sink("ablation_odp_latency");
             sink.table(
                 "Ablation: ODP vs pinned READ latency, cold and warm "
                 "(" + std::to_string(count) + " buffers per point)",
                 result,
                 {exp::col("cold_us", exp::Stat::Mean, 2, "cold_us"),
                  exp::col("warm_us", exp::Stat::Mean, 2, "warm_us"),
                  exp::col("cold_warm_ratio", exp::Stat::Mean, 1,
                           "cold/warm")});
             sink.note(
                 "Li et al.'s findings hold: cold ODP pays the fault "
                 "plus the RNR round trip\n(milliseconds vs "
                 "microseconds); warm ODP matches pinned; prefetch "
                 "removes the\ncold gap; and tuning the RNR NAK timer "
                 "down (Sec. IX-A) shrinks the cold path\nby the "
                 "shortened wait.");
         }});
}

} // namespace bench
} // namespace ibsim
