/**
 * @file
 * Ablation: ODP vs pinned registration — latency and bandwidth, cold and
 * warm (the Li et al. characterization the paper builds on, refs [19],
 * [20], plus the RNR-tuning observation of Sec. IX-A).
 *
 * Cold = first network touch of each page (faults under ODP); warm =
 * pages already mapped. Receiver-side prefetch (ibv_advise_mr) is the
 * third column — Li et al. found it recovers most of the gap.
 */

#include <cstdio>
#include <string>

#include "cluster/cluster.hh"
#include "pitfall/experiment.hh"

using namespace ibsim;
using ibsim::pitfall::TablePrinter;

namespace {

struct Sample
{
    double coldUs = 0;
    double warmUs = 0;
};

/** Mean READ latency over @p count buffers of @p size bytes. */
Sample
measure(bool odp, bool prefetch, std::uint32_t size, std::size_t count,
        std::uint64_t seed, double rnr_delay_ms)
{
    Cluster cluster(rnic::DeviceProfile::knl(), 2, seed);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();
    verbs::QpConfig config;
    config.cack = 18;
    config.minRnrNakDelay = Time::ms(rnr_delay_ms);
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq, config);

    const std::uint64_t stride =
        ((size + mem::pageSize - 1) / mem::pageSize) * mem::pageSize;
    const std::uint64_t area = stride * count;
    const auto src = server.alloc(area);
    const auto dst = client.alloc(area);
    server.memory().touch(src, area);  // data exists host-side
    auto& smr = server.registerMemory(
        src, area,
        odp ? verbs::AccessFlags::odp() : verbs::AccessFlags::pinned());
    auto& cmr = client.registerMemory(dst, area,
                                      verbs::AccessFlags::pinned());

    if (prefetch) {
        server.prefetch(smr, src, area);
        cluster.advance(Time::ms(5));
    }

    Sample sample;
    std::uint64_t done = 0;
    for (int round = 0; round < 2; ++round) {
        const Time start = cluster.now();
        for (std::size_t i = 0; i < count; ++i) {
            cqp.postRead(dst + i * stride, cmr.lkey(), src + i * stride,
                         smr.rkey(), size, done + i);
            cluster.runUntil(
                [&] { return ccq.totalCompletions() >= done + i + 1; },
                cluster.now() + Time::sec(10));
        }
        done += count;
        const double us =
            (cluster.now() - start).toUs() / static_cast<double>(count);
        if (round == 0)
            sample.coldUs = us;
        else
            sample.warmUs = us;
    }
    return sample;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::size_t count =
        (argc > 1 && std::string(argv[1]) == "--quick") ? 16 : 64;

    std::printf("== Ablation: ODP vs pinned READ latency, cold and warm "
                "(%zu buffers per point) ==\n\n", count);
    TablePrinter table({"size_B", "mode", "cold_us", "warm_us",
                        "cold/warm"});
    table.printHeader();

    for (std::uint32_t size : {64u, 1024u, 16384u}) {
        const auto pinned =
            measure(false, false, size, count, 1, 1.28);
        const auto odp = measure(true, false, size, count, 1, 1.28);
        const auto pre = measure(true, true, size, count, 1, 1.28);
        const auto tuned = measure(true, false, size, count, 1, 0.01);

        auto row = [&](const char* mode, const Sample& s) {
            table.printRow({TablePrinter::fmt(std::uint64_t{size}), mode,
                            TablePrinter::fmt(s.coldUs, 2),
                            TablePrinter::fmt(s.warmUs, 2),
                            TablePrinter::fmt(
                                s.warmUs > 0 ? s.coldUs / s.warmUs : 0,
                                1)});
        };
        row("pinned", pinned);
        row("ODP", odp);
        row("ODP+prefetch", pre);
        row("ODP+minRNR", tuned);
        std::printf("\n");
    }

    std::printf("Li et al.'s findings hold: cold ODP pays the fault plus "
                "the RNR round trip\n(milliseconds vs microseconds); warm "
                "ODP matches pinned; prefetch removes the\ncold gap; and "
                "tuning the RNR NAK timer down (Sec. IX-A) shrinks the "
                "cold path\nby the shortened wait.\n");
    return 0;
}
