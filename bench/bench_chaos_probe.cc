/**
 * @file
 * Chaos probe: one randomized RC workload per fault class, with the
 * invariant oracle riding along.
 *
 * This is the robustness companion to the paper benches: instead of
 * measuring a pitfall, it measures what each fault class costs the RC
 * transport (completion-time inflation over the fault-free baseline) and
 * asserts — via chaos::InvariantMonitor — that correctness held while it
 * happened. A non-zero violations column is a transport bug, not a
 * measurement.
 */

#include "suite.hh"

#include <string>

#include "chaos/chaos_engine.hh"
#include "chaos/invariant_monitor.hh"
#include "cluster/cluster.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

constexpr std::size_t opsPerTrial = 80;
constexpr std::uint64_t bufBytes = 64 * 1024;

chaos::ChaosConfig
configFor(const std::string& fault, std::uint64_t seed)
{
    chaos::ChaosConfig cfg;
    cfg.seed = seed;
    if (fault == "drop") {
        cfg.dropRate = 0.05;
    } else if (fault == "dup") {
        cfg.dupRate = 0.3;
    } else if (fault == "reorder") {
        cfg.reorderRate = 0.3;
        cfg.reorderMaxHold = Time::us(300);
    } else if (fault == "corrupt") {
        cfg.corruptRate = 0.05;  // fails ICRC, acts as loss
    } else if (fault == "delay") {
        cfg.delayRate = 1.0;
        cfg.delayMax = Time::us(200);
    } else if (fault == "flap") {
        cfg.flapPeriod = Time::ms(2);
        cfg.flapDown = Time::us(100);
    } else if (fault == "forged_nak") {
        cfg.forgedNakRate = 0.05;
    } else if (fault == "storm") {
        // Wire untouched; the fault is ODP-side (set up below).
    }
    return cfg;
}

exp::Metrics
runProbe(const std::string& fault, std::uint64_t seed)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, seed);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);

    const auto src = a.alloc(bufBytes);
    const auto dst = b.alloc(bufBytes);
    a.touch(src, bufBytes);
    b.touch(dst, bufBytes);
    auto& amr = a.registerMemory(src, bufBytes, verbs::AccessFlags::odp());
    auto& bmr = b.registerMemory(dst, bufBytes, verbs::AccessFlags::odp());

    chaos::ChaosEngine engine(cluster.events(), configFor(fault, seed));
    engine.install(cluster.fabric());
    if (fault == "storm")
        engine.startInvalidationStorm(b.driver(), bmr.table(), dst,
                                      bufBytes, Time::us(100),
                                      /*pages_per_burst=*/2,
                                      /*bursts=*/100);

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watch(a.rnic(), aqp.context());
    monitor.watch(b.rnic(), bqp.context());

    for (std::size_t i = 0; i < opsPerTrial; ++i)
        bqp.postRecv(dst + 32 * 1024 + (i % 64) * 256, bmr.lkey(), 256,
                     1000 + i);

    Rng& rng = cluster.rng();
    const Time start = cluster.now();
    for (std::size_t i = 0; i < opsPerTrial; ++i) {
        const std::uint64_t off = (i % 64) * 256;
        const auto len =
            static_cast<std::uint32_t>(rng.uniformInt(16, 256));
        switch (rng.uniformInt(0, 2)) {
          case 0:
            aqp.postWrite(src + off, amr.lkey(), dst + off, bmr.rkey(),
                          len, i + 1);
            break;
          case 1:
            aqp.postRead(src + 16 * 1024 + off, amr.lkey(),
                         dst + 16 * 1024 + off, bmr.rkey(), len, i + 1);
            break;
          default:
            aqp.postSend(src + 32 * 1024 + off, amr.lkey(), len, i + 1);
            break;
        }
        cluster.advance(rng.uniformTime(Time::us(1), Time::us(20)));
    }
    const bool completed = cluster.runUntil(
        [&] {
            return aqp.outstanding() == 0 &&
                   acq.totalCompletions() >= opsPerTrial;
        },
        cluster.now() + Time::sec(600));
    monitor.finalCheck();

    return exp::Metrics{}
        .set("total_s", (cluster.now() - start).toSec())
        .set("completed", completed)
        .set("violations",
             static_cast<double>(monitor.violationCount()))
        .set("retransmissions",
             static_cast<double>(aqp.stats().retransmissions))
        .set("injected",
             static_cast<double>(cluster.fabric().totalInjected()))
        .set("dropped",
             static_cast<double>(cluster.fabric().totalDropped()));
}

} // namespace

void
registerChaosProbe(exp::Registry& registry)
{
    registry.add(
        {"chaos_probe",
         "fault-class sweep under the invariant oracle",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(5, 2);

             exp::Sweep sweep;
             sweep.axis("fault",
                        std::vector<std::string>{
                            "none", "delay", "reorder", "dup", "drop",
                            "corrupt", "flap", "forged_nak", "storm"});

             auto result = ctx.runner("chaos_probe").run(
                 sweep, trials,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     return runProbe(cell.str("fault"), seed);
                 });

             auto sink = ctx.sink("chaos_probe");
             auto columns = std::vector<exp::MetricColumn>{
                 exp::col("total_s", exp::Stat::Mean, 4, "total_s"),
                 exp::col("retransmissions", exp::Stat::Mean, 1,
                          "rexmits"),
                 exp::col("dropped", exp::Stat::Mean, 1, "dropped"),
                 exp::col("injected", exp::Stat::Mean, 1, "injected"),
                 exp::col("completed", exp::Stat::PctMean, 0,
                          "completed%"),
                 exp::col("violations", exp::Stat::Sum, 0,
                          "violations")};
             sink.table(
                 "Chaos probe: RC workload per fault class, oracle "
                 "attached\n   (80 mixed READ/WRITE/SEND ops on ODP "
                 "regions; violations must be 0)",
                 result, columns);
             sink.note(
                 "Each fault class costs the transport differently "
                 "(drops pay vendor-floored\ntimeouts, reordering pays "
                 "go-back-N replays, delay is nearly free); the\n"
                 "violations column is the invariant oracle's verdict "
                 "and must stay 0.");
         }});
}

} // namespace bench
} // namespace ibsim
