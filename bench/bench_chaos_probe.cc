/**
 * @file
 * Chaos probe: one randomized RC workload per fault class, with the
 * invariant oracle riding along.
 *
 * This is the robustness companion to the paper benches: instead of
 * measuring a pitfall, it measures what each fault class costs the RC
 * transport (completion-time inflation over the fault-free baseline) and
 * asserts — via chaos::InvariantMonitor — that correctness held while it
 * happened. A non-zero violations column is a transport bug, not a
 * measurement.
 */

#include "suite.hh"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "chaos/chaos_engine.hh"
#include "chaos/invariant_monitor.hh"
#include "cluster/cluster.hh"
#include "cluster/topology.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

constexpr std::size_t opsPerTrial = 80;
constexpr std::uint64_t bufBytes = 64 * 1024;

chaos::ChaosConfig
configFor(const std::string& fault, std::uint64_t seed)
{
    chaos::ChaosConfig cfg;
    cfg.seed = seed;
    if (fault == "drop") {
        cfg.dropRate = 0.05;
    } else if (fault == "dup") {
        cfg.dupRate = 0.3;
    } else if (fault == "reorder") {
        cfg.reorderRate = 0.3;
        cfg.reorderMaxHold = Time::us(300);
    } else if (fault == "corrupt") {
        cfg.corruptRate = 0.05;  // fails ICRC, acts as loss
    } else if (fault == "delay") {
        cfg.delayRate = 1.0;
        cfg.delayMax = Time::us(200);
    } else if (fault == "flap") {
        cfg.flapPeriod = Time::ms(2);
        cfg.flapDown = Time::us(100);
    } else if (fault == "forged_nak") {
        cfg.forgedNakRate = 0.05;
    } else if (fault == "storm") {
        // Wire untouched; the fault is ODP-side (set up below).
    }
    return cfg;
}

exp::Metrics
runProbe(const std::string& fault, std::uint64_t seed)
{
    const auto wallStart = std::chrono::steady_clock::now();
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, seed);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);

    const auto src = a.alloc(bufBytes);
    const auto dst = b.alloc(bufBytes);
    a.touch(src, bufBytes);
    b.touch(dst, bufBytes);
    auto& amr = a.registerMemory(src, bufBytes, verbs::AccessFlags::odp());
    auto& bmr = b.registerMemory(dst, bufBytes, verbs::AccessFlags::odp());

    chaos::ChaosEngine engine(cluster.events(), configFor(fault, seed));
    engine.install(cluster.fabric());
    if (fault == "storm")
        engine.startInvalidationStorm(b.driver(), bmr.table(), dst,
                                      bufBytes, Time::us(100),
                                      /*pages_per_burst=*/2,
                                      /*bursts=*/100);

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watch(a.rnic(), aqp.context());
    monitor.watch(b.rnic(), bqp.context());

    for (std::size_t i = 0; i < opsPerTrial; ++i)
        bqp.postRecv(dst + 32 * 1024 + (i % 64) * 256, bmr.lkey(), 256,
                     1000 + i);

    Rng& rng = cluster.rng();
    const Time start = cluster.now();
    for (std::size_t i = 0; i < opsPerTrial; ++i) {
        const std::uint64_t off = (i % 64) * 256;
        const auto len =
            static_cast<std::uint32_t>(rng.uniformInt(16, 256));
        switch (rng.uniformInt(0, 2)) {
          case 0:
            aqp.postWrite(src + off, amr.lkey(), dst + off, bmr.rkey(),
                          len, i + 1);
            break;
          case 1:
            aqp.postRead(src + 16 * 1024 + off, amr.lkey(),
                         dst + 16 * 1024 + off, bmr.rkey(), len, i + 1);
            break;
          default:
            aqp.postSend(src + 32 * 1024 + off, amr.lkey(), len, i + 1);
            break;
        }
        cluster.advance(rng.uniformTime(Time::us(1), Time::us(20)));
    }
    const bool completed = cluster.runUntil(
        [&] {
            return aqp.outstanding() == 0 &&
                   acq.totalCompletions() >= opsPerTrial;
        },
        cluster.now() + Time::sec(600));
    monitor.finalCheck();

    const double wallNs =
        static_cast<double>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() -
                                wallStart)
                                .count());
    return exp::Metrics{}
        .set("total_s", (cluster.now() - start).toSec())
        .set("ns_per_packet",
             wallNs / static_cast<double>(
                          std::max<std::uint64_t>(
                              1, monitor.packetsObserved())))
        .set("completed", completed)
        .set("violations",
             static_cast<double>(monitor.violationCount()))
        .set("retransmissions",
             static_cast<double>(aqp.stats().retransmissions))
        .set("injected",
             static_cast<double>(cluster.fabric().totalInjected()))
        .set("dropped",
             static_cast<double>(cluster.fabric().totalDropped()));
}

/**
 * Topology probe: ring traffic of one verb class (RC atomics, UD
 * datagrams or UC writes) over an N-node mesh, under one fault class —
 * including per-link flap schedules (chaos::Topology) and forged NAKs
 * rewound into coalesced ACK ranges. The oracle's transport-specific
 * invariant families (A1/A2, U1/U3, V1-V3) audit every flow via
 * watchAll().
 *
 * `jobs` = 0 runs the single-queue kernel; >= 1 runs island mode on
 * that many workers (chaos pipeline forked per island, one topology
 * schedule replica each) — the chaos-under-parallelism configuration
 * whose verdicts must match the sequential ones bit-for-bit.
 */
exp::Metrics
runTopoProbe(const std::string& fault, const std::string& verb,
             std::size_t nodes, std::uint64_t seed, unsigned jobs = 0,
             ScheduleMode mode = ScheduleMode::Stealing)
{
    const auto wallStart = std::chrono::steady_clock::now();
    constexpr std::size_t opsPerLink = 30;
    constexpr std::uint64_t meshBufBytes = 16 * 1024;

    ClusterOptions options;
    options.sharded = jobs > 0;
    options.jobs = jobs > 0 ? jobs : 1;
    options.scheduleMode = mode;
    Cluster cluster(rnic::DeviceProfile::connectX4(), nodes, seed,
                    net::LinkConfig{}, options);

    chaos::ChaosConfig cfg;
    cfg.seed = seed;
    if (fault == "dup") {
        cfg.dupRate = 0.2;
    } else if (fault == "drop") {
        cfg.dropRate = 0.03;
    } else if (fault == "nak_coalesce") {
        cfg.forgedNakRate = 0.02;
        cfg.forgedNakMaxRewind = 8;
        cfg.delayRate = 0.2;
    }
    chaos::ChaosEngine engine(cluster.events(), cfg);
    chaos::Topology topo(nodes, seed);
    if (fault == "mesh_flap") {
        topo.setDefaultPlan({Time::us(500), Time::us(100)});
        engine.attachTopology(topo);
    }
    if (cluster.sharded())
        engine.installSharded(cluster.fabric());
    else
        engine.install(cluster.fabric());
    chaos::InvariantMonitor monitor(cluster.fabric());

    // One flow per ring link i -> (i+1) % nodes.
    std::vector<verbs::QueuePair> req(nodes), resp(nodes);
    std::vector<verbs::CompletionQueue*> cqs(nodes);
    std::vector<std::uint64_t> buf(nodes);
    std::vector<verbs::MemoryRegion*> mr(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
        cqs[i] = &cluster.node(i).createCq();
        buf[i] = cluster.node(i).alloc(meshBufBytes);
        cluster.node(i).touch(buf[i], meshBufBytes);
        mr[i] = &cluster.node(i).registerMemory(
            buf[i], meshBufBytes, verbs::AccessFlags::pinned());
    }
    verbs::QpConfig qpCfg;
    if (verb == "ud")
        qpCfg.transport = verbs::Transport::Ud;
    else if (verb == "uc")
        qpCfg.transport = verbs::Transport::Uc;
    for (std::size_t i = 0; i < nodes; ++i) {
        const std::size_t j = (i + 1) % nodes;
        if (verb == "ud") {
            req[i] = cluster.node(i).createQp(*cqs[i], qpCfg);
            req[i].connect(0, 0);
        } else {
            auto [qa, qb] = cluster.connectRc(cluster.node(i), *cqs[i],
                                              cluster.node(j), *cqs[j],
                                              qpCfg);
            req[i] = qa;
            resp[i] = qb;  // responder-side QP living on node j
        }
    }
    // UD needs one addressable responder QP per node (its own RECVs).
    std::vector<verbs::QueuePair> udRx(nodes);
    if (verb == "ud") {
        for (std::size_t i = 0; i < nodes; ++i) {
            udRx[i] = cluster.node(i).createQp(*cqs[i], qpCfg);
            udRx[i].connect(0, 0);
        }
    }
    monitor.watchAll(cluster);

    for (std::size_t i = 0; i < nodes; ++i) {
        for (std::size_t k = 0; k < opsPerLink; ++k) {
            const std::uint64_t slot = 8192 + (k % 16) * 256;
            if (verb == "ud") {
                udRx[i].postRecv(buf[i] + slot, mr[i]->lkey(), 256,
                                 1000 + k);
            } else if (verb == "uc") {
                resp[i].postRecv(buf[(i + 1) % nodes] + slot,
                                 mr[(i + 1) % nodes]->lkey(), 256,
                                 1000 + k);
            }
        }
    }

    Rng& rng = cluster.rng();
    const Time start = cluster.now();
    for (std::size_t k = 0; k < opsPerLink; ++k) {
        for (std::size_t i = 0; i < nodes; ++i) {
            const std::size_t j = (i + 1) % nodes;
            const std::uint64_t off = (k % 16) * 256;
            if (verb == "atomic") {
                if (k % 2 == 0) {
                    req[i].postFetchAdd(buf[i] + 1024 + off,
                                        mr[i]->lkey(), buf[j],
                                        mr[j]->rkey(), 1, k + 1);
                } else {
                    req[i].postCompSwap(buf[i] + 1024 + off,
                                        mr[i]->lkey(), buf[j],
                                        mr[j]->rkey(), 0, 1, k + 1);
                }
            } else if (verb == "ud") {
                req[i].postSendUd(
                    {cluster.node(j).lid(), udRx[j].qpn()},
                    buf[i] + 2048 + off, mr[i]->lkey(), 32, k + 1);
            } else {
                req[i].postWrite(buf[i] + off, mr[i]->lkey(),
                                 buf[j] + 4096 + off, mr[j]->rkey(), 128,
                                 k + 1);
            }
        }
        cluster.advance(rng.uniformTime(Time::us(5), Time::us(40)));
    }
    const bool completed = cluster.runUntil(
        [&] {
            for (std::size_t i = 0; i < nodes; ++i)
                if (req[i].outstanding() != 0)
                    return false;
            return true;
        },
        cluster.now() + Time::sec(600));
    cluster.advance(Time::ms(5));  // land stray one-way deliveries
    monitor.finalCheck();

    const double wallNs =
        static_cast<double>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() -
                                wallStart)
                                .count());
    return exp::Metrics{}
        .set("total_s", (cluster.now() - start).toSec())
        .set("ns_per_packet",
             wallNs / static_cast<double>(
                          std::max<std::uint64_t>(
                              1, monitor.packetsObserved())))
        .set("completed", completed)
        .set("violations",
             static_cast<double>(monitor.violationCount()))
        .set("flaps", static_cast<double>(cluster.sharded()
                                              ? engine.shardedFlaps()
                                              : topo.totalFlaps()))
        .set("dropped",
             static_cast<double>(cluster.fabric().totalDropped()));
}

} // namespace

void
registerChaosProbe(exp::Registry& registry)
{
    registry.add(
        {"chaos_probe",
         "fault-class sweep under the invariant oracle",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(5, 2);

             exp::Sweep sweep;
             sweep.axis("fault",
                        std::vector<std::string>{
                            "none", "delay", "reorder", "dup", "drop",
                            "corrupt", "flap", "forged_nak", "storm"});

             auto result = ctx.runner("chaos_probe").run(
                 sweep, trials,
                 [](const exp::Cell& cell, std::uint64_t seed) {
                     return runProbe(cell.str("fault"), seed);
                 });

             auto sink = ctx.sink("chaos_probe");
             auto columns = std::vector<exp::MetricColumn>{
                 exp::col("total_s", exp::Stat::Mean, 4, "total_s"),
                 exp::col("ns_per_packet", exp::Stat::Mean, 1, "ns/pkt"),
                 exp::col("retransmissions", exp::Stat::Mean, 1,
                          "rexmits"),
                 exp::col("dropped", exp::Stat::Mean, 1, "dropped"),
                 exp::col("injected", exp::Stat::Mean, 1, "injected"),
                 exp::col("completed", exp::Stat::PctMean, 0,
                          "completed%"),
                 exp::col("violations", exp::Stat::Sum, 0,
                          "violations")};
             sink.table(
                 "Chaos probe: RC workload per fault class, oracle "
                 "attached\n   (80 mixed READ/WRITE/SEND ops on ODP "
                 "regions; violations must be 0)",
                 result, columns);
             sink.note(
                 "Each fault class costs the transport differently "
                 "(drops pay vendor-floored\ntimeouts, reordering pays "
                 "go-back-N replays, delay is nearly free); the\n"
                 "violations column is the invariant oracle's verdict "
                 "and must stay 0.");
         }});

    registry.add(
        {"chaos_topology",
         "fault x verb x mesh-size sweep under the invariant oracle",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(3, 2);

             exp::Sweep sweep;
             sweep.axis("fault",
                        std::vector<std::string>{"none", "dup", "drop",
                                                 "mesh_flap",
                                                 "nak_coalesce"});
             sweep.axis("verb", std::vector<std::string>{"atomic", "ud",
                                                         "uc"});
             sweep.axis("nodes", std::vector<double>{2, 4}, 0);

             auto result = ctx.runner("chaos_topology")
                               .run(sweep, trials,
                                    [](const exp::Cell& cell,
                                       std::uint64_t seed) {
                                        return runTopoProbe(
                                            cell.str("fault"),
                                            cell.str("verb"),
                                            static_cast<std::size_t>(
                                                cell.num("nodes")),
                                            seed);
                                    });

             auto sink = ctx.sink("chaos_topology");
             auto columns = std::vector<exp::MetricColumn>{
                 exp::col("total_s", exp::Stat::Mean, 4, "total_s"),
                 exp::col("ns_per_packet", exp::Stat::Mean, 1, "ns/pkt"),
                 exp::col("dropped", exp::Stat::Mean, 1, "dropped"),
                 exp::col("flaps", exp::Stat::Mean, 1, "flaps"),
                 exp::col("completed", exp::Stat::PctMean, 0,
                          "completed%"),
                 exp::col("violations", exp::Stat::Sum, 0,
                          "violations")};
             sink.table(
                 "Chaos topology probe: one verb class per ring link of "
                 "an N-node mesh\n   (RC atomics / UD datagrams / UC "
                 "writes; per-link flap schedules; violations\n   must "
                 "be 0)",
                 result, columns);
             sink.note(
                 "Exercises the transport-specific invariant families: "
                 "exactly-once atomics\nunder duplication (A1/A2), UD "
                 "drop accounting (U3) and fire-and-forget\ncontracts "
                 "(U1/V1/V2/V3) under per-link flap schedules and "
                 "forged NAKs\nrewound into coalesced ACK ranges.");

             // Chaos under parallelism: the same probe on a 64-node
             // mesh driven by the sharded kernel. Every cell runs the
             // SAME seed three times — jobs = 1 (the inline windowed
             // reference), jobs = N with the stealing scheduler, and
             // jobs = N with the static fallback — and seq_match
             // asserts that everything observable about the simulation
             // (virtual duration, drops, flap windows, oracle verdict,
             // completion) is bit-identical; only wall clock may move.
             exp::Sweep sharded;
             sharded.axis("fault", std::vector<std::string>{
                                       "dup", "mesh_flap"});
             sharded.axis("verb", std::vector<std::string>{"atomic"});
             sharded.axis("nodes", std::vector<double>{64}, 0);
             // jobs = 1 is the sequential reference cell the regression
             // checker derives speedup_vs_seq from.
             sharded.axis("jobs", std::vector<double>{1, 2, 4}, 0);

             auto sresult = ctx.runner("chaos_topology_sharded")
                                .run(sharded, trials,
                                     [](const exp::Cell& cell,
                                        std::uint64_t seed) {
                 const auto nodes =
                     static_cast<std::size_t>(cell.num("nodes"));
                 const auto jobs =
                     static_cast<unsigned>(cell.num("jobs"));
                 const exp::Metrics seq = runTopoProbe(
                     cell.str("fault"), cell.str("verb"), nodes, seed,
                     1);
                 exp::Metrics par = runTopoProbe(
                     cell.str("fault"), cell.str("verb"), nodes, seed,
                     jobs, ScheduleMode::Stealing);
                 const exp::Metrics fixed = runTopoProbe(
                     cell.str("fault"), cell.str("verb"), nodes, seed,
                     jobs, ScheduleMode::Static);
                 bool match = true;
                 for (const char* m : {"total_s", "dropped", "flaps",
                                       "violations", "completed"})
                     match = match && seq.get(m) == par.get(m) &&
                             seq.get(m) == fixed.get(m);
                 par.set("seq_match", match);
                 return par;
             });

             auto scolumns = columns;
             scolumns.push_back(exp::col("seq_match", exp::Stat::PctMean,
                                         0, "seq_match%"));
             auto ssink = ctx.sink("chaos_topology_sharded");
             ssink.table(
                 "Chaos topology probe, island mode: 64-node mesh on "
                 "the sharded kernel\n   (each cell replays its seed at "
                 "jobs=1 and jobs=N; seq_match must be 100)",
                 sresult, scolumns);
             ssink.note(
                 "One island per node, chaos pipeline forked per "
                 "island (disjoint RNG streams,\nper-island flap-"
                 "schedule replicas). seq_match compares jobs=N under "
                 "BOTH schedulers\n(stealing and static) against the "
                 "inline jobs=1 reference on the same seed:\nvirtual "
                 "duration, drops, flap windows, oracle verdict and "
                 "completion must all be\nbit-identical.");
         }});
}

} // namespace bench
} // namespace ibsim
