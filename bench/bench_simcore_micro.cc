/**
 * @file
 * Google-benchmark micro-benchmarks of the simulator substrate itself:
 * event queue throughput, fabric hop cost, and full RC round trips. These
 * bound how large a flood experiment the harness can simulate per second
 * of wall clock.
 */

#include <benchmark/benchmark.h>

#include "cluster/cluster.hh"
#include "rnic/qp_context.hh"
#include "simcore/event_queue.hh"

using namespace ibsim;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.scheduleAfter(Time::ns(i), [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueCancel(benchmark::State& state)
{
    for (auto _ : state) {
        EventQueue q;
        std::vector<EventHandle> handles;
        handles.reserve(1000);
        for (int i = 0; i < 1000; ++i)
            handles.push_back(q.scheduleAfter(Time::ns(i), [] {}));
        for (auto& h : handles)
            q.cancel(h);
        q.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancel);

void
BM_PsnDiff(benchmark::State& state)
{
    std::uint32_t a = 0x123456;
    std::uint32_t b = 0xfffff0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rnic::psnDiff(a, b));
        a = (a + 1) & 0xffffff;
    }
}
BENCHMARK(BM_PsnDiff);

void
BM_PinnedReadRoundTrip(benchmark::State& state)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 1);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);
    const std::uint64_t src = server.alloc(4096);
    const std::uint64_t dst = client.alloc(4096);
    auto& smr =
        server.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& cmr =
        client.registerMemory(dst, 4096, verbs::AccessFlags::pinned());

    std::uint64_t wr = 0;
    for (auto _ : state) {
        cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, wr++);
        cluster.runUntil([&] { return ccq.totalCompletions() >= wr; });
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PinnedReadRoundTrip);

void
BM_OdpReadFirstFault(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Cluster cluster(rnic::DeviceProfile::connectX4(), 2,
                        state.iterations() + 1);
        Node& client = cluster.node(0);
        Node& server = cluster.node(1);
        auto& ccq = client.createCq();
        auto& scq = server.createCq();
        auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);
        const std::uint64_t src = server.alloc(4096);
        const std::uint64_t dst = client.alloc(4096);
        auto& smr =
            server.registerMemory(src, 4096, verbs::AccessFlags::odp());
        auto& cmr = client.registerMemory(dst, 4096,
                                          verbs::AccessFlags::pinned());
        state.ResumeTiming();

        cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, 1);
        cluster.runUntil([&] { return ccq.totalCompletions() >= 1; });
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OdpReadFirstFault);

} // namespace

BENCHMARK_MAIN();
