/**
 * @file
 * Micro-benchmarks of the simulator substrate itself: event queue
 * throughput, PSN arithmetic, and full RC round trips. These bound how
 * large a flood experiment the harness can simulate per second of wall
 * clock.
 *
 * Unlike the figure benches, the reported ns/op is *wall-clock* time of
 * this machine, so it is the one bench whose numbers legitimately vary
 * between runs (and between --jobs settings). The deterministic part —
 * the number of simulated items per trial — is fixed by the config.
 */

#include "suite.hh"

#include <chrono>
#include <cstdlib>

#include "cluster/cluster.hh"
#include "rnic/qp_context.hh"
#include "simcore/event_queue.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

using Clock = std::chrono::steady_clock;

double
nsPerItem(Clock::time_point start, Clock::time_point stop,
          std::size_t items)
{
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        stop - start);
    return static_cast<double>(ns.count()) /
           static_cast<double>(items ? items : 1);
}

/** Schedule + run 1000 events per repetition. */
double
eventQueueScheduleRun(std::size_t reps)
{
    const auto start = Clock::now();
    std::uint64_t sink = 0;
    for (std::size_t r = 0; r < reps; ++r) {
        EventQueue q;
        for (int i = 0; i < 1000; ++i)
            q.scheduleAfter(Time::ns(i), [&sink] { ++sink; });
        q.run();
    }
    const auto stop = Clock::now();
    // The side effect keeps the loop from being optimised away.
    if (sink != reps * 1000)
        return -1;
    return nsPerItem(start, stop, reps * 1000);
}

/** Schedule + cancel 1000 events per repetition. */
double
eventQueueCancel(std::size_t reps)
{
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
        EventQueue q;
        std::vector<EventHandle> handles;
        handles.reserve(1000);
        for (int i = 0; i < 1000; ++i)
            handles.push_back(q.scheduleAfter(Time::ns(i), [] {}));
        for (auto& h : handles)
            q.cancel(h);
        q.run();
    }
    const auto stop = Clock::now();
    return nsPerItem(start, stop, reps * 1000);
}

/**
 * Flood-shaped event churn: the schedule/cancel pattern a message flood
 * imposes on the kernel. Every message on every QP re-arms a ~1 ms
 * retransmission timer (cancelling the previous one — the timer almost
 * never fires) and schedules a near-future delivery. This is the
 * workload the timer wheel exists for: cancels are O(1) and the
 * cancelled far-future timers are reclaimed lazily instead of
 * tombstoning a heap.
 */
double
eventQueueFlood(std::size_t reps)
{
    constexpr int kQps = 64;
    constexpr int kMsgsPerQp = 100;
    std::uint64_t delivered = 0;
    std::size_t ops = 0;
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
        EventQueue q;
        std::vector<EventHandle> rexmit(kQps);
        for (int msg = 0; msg < kMsgsPerQp; ++msg) {
            for (int i = 0; i < kQps; ++i) {
                if (msg > 0) {
                    q.cancel(rexmit[i]);
                    ++ops;
                }
                rexmit[i] =
                    q.scheduleAfter(Time::us(1000) + Time::ns(i), [] {});
                q.scheduleAfter(Time::ns(1500 + (i % 7) * 100),
                                [&delivered] { ++delivered; });
                ops += 2;
            }
            q.advance(Time::us(2));
        }
        for (int i = 0; i < kQps; ++i) {
            q.cancel(rexmit[i]);
            ++ops;
        }
        q.run();
    }
    const auto stop = Clock::now();
    if (delivered !=
        reps * static_cast<std::uint64_t>(kQps) * kMsgsPerQp)
        return -1;
    return nsPerItem(start, stop, ops);
}

/** 24-bit PSN wrap-around difference. */
double
psnDiff(std::size_t iters)
{
    std::uint32_t a = 0x123456;
    const std::uint32_t b = 0xfffff0;
    volatile std::int64_t sink = 0;
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
        sink = rnic::psnDiff(a, b);
        a = (a + 1) & 0xffffff;
    }
    const auto stop = Clock::now();
    (void)sink;
    return nsPerItem(start, stop, iters);
}

/** Pinned 100-B READ round trips on a long-lived cluster. */
double
pinnedReadRoundTrip(std::size_t iters, std::uint64_t seed)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, seed);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);
    const std::uint64_t src = server.alloc(4096);
    const std::uint64_t dst = client.alloc(4096);
    auto& smr =
        server.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& cmr =
        client.registerMemory(dst, 4096, verbs::AccessFlags::pinned());

    std::uint64_t wr = 0;
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
        cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, wr++);
        cluster.runUntil([&] { return ccq.totalCompletions() >= wr; });
    }
    const auto stop = Clock::now();
    return nsPerItem(start, stop, iters);
}

/** Fresh cluster per iteration; first ODP READ pays the fault path. */
double
odpReadFirstFault(std::size_t iters, std::uint64_t seed)
{
    double total_ns = 0;
    for (std::size_t i = 0; i < iters; ++i) {
        Cluster cluster(rnic::DeviceProfile::connectX4(), 2, seed + i);
        Node& client = cluster.node(0);
        Node& server = cluster.node(1);
        auto& ccq = client.createCq();
        auto& scq = server.createCq();
        auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);
        const std::uint64_t src = server.alloc(4096);
        const std::uint64_t dst = client.alloc(4096);
        auto& smr =
            server.registerMemory(src, 4096, verbs::AccessFlags::odp());
        auto& cmr = client.registerMemory(dst, 4096,
                                          verbs::AccessFlags::pinned());

        const auto start = Clock::now();
        cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, 1);
        cluster.runUntil([&] { return ccq.totalCompletions() >= 1; });
        const auto stop = Clock::now();
        total_ns += nsPerItem(start, stop, 1);
    }
    return total_ns / static_cast<double>(iters ? iters : 1);
}

} // namespace

void
registerSimcoreMicro(exp::Registry& registry)
{
    registry.add(
        {"simcore_micro", "simulator substrate wall-clock throughput",
         [](const exp::RunContext& ctx) {
             const std::size_t reps = ctx.trials(200, 20);

             // This bench always leaves a machine-readable record: when
             // no --json/IBSIM_JSON destination was given, its rows go
             // to BENCH_simcore.json in the working directory (the file
             // the CI trajectory tracking consumes).
             exp::RunContext local = ctx;
             if (local.jsonPath.empty() &&
                 std::getenv("IBSIM_JSON") == nullptr) {
                 local.jsonPath = "BENCH_simcore.json";
             }

             exp::Sweep sweep;
             sweep.axis("micro",
                        std::vector<std::string>{
                            "event_queue_schedule_run",
                            "event_queue_cancel", "event_queue_flood",
                            "psn_diff", "pinned_read_round_trip",
                            "odp_read_first_fault"});

             auto result = local.runner("simcore_micro").run(
                 sweep, 1,
                 [reps](const exp::Cell& cell, std::uint64_t seed) {
                     double ns = 0;
                     std::size_t items = 0;
                     switch (cell.valueIndex("micro")) {
                     case 0:
                         items = reps * 1000;
                         ns = eventQueueScheduleRun(reps);
                         break;
                     case 1:
                         items = reps * 1000;
                         ns = eventQueueCancel(reps);
                         break;
                     case 2:
                         // 64 QPs x 100 msgs x (2 schedules + 1 cancel)
                         items = reps * 19200;
                         ns = eventQueueFlood(reps);
                         break;
                     case 3:
                         items = reps * 10000;
                         ns = psnDiff(reps * 10000);
                         break;
                     case 4:
                         items = reps * 10;
                         ns = pinnedReadRoundTrip(reps * 10, seed);
                         break;
                     default:
                         items = reps / 4 + 1;
                         ns = odpReadFirstFault(reps / 4 + 1, seed);
                         break;
                     }
                     return exp::Metrics{}
                         .set("ns_per_item", ns)
                         .set("items", static_cast<double>(items))
                         .set("items_per_s",
                              ns > 0 ? 1e9 / ns : 0.0);
                 });

             auto sink = local.sink("simcore_micro");
             sink.table(
                 "Simulator substrate micro-benchmarks (wall clock; "
                 "numbers vary by machine)",
                 result,
                 {exp::col("ns_per_item", exp::Stat::Mean, 1, "ns/item"),
                  exp::col("items", exp::Stat::Mean, 0, "items"),
                  exp::col("items_per_s", exp::Stat::Mean, 0,
                           "items/s")});
             sink.note(
                 "These bound how large a flood experiment the harness "
                 "can simulate per second\nof wall clock; they are the "
                 "one bench whose numbers legitimately differ across\n"
                 "runs and --jobs settings.");
         }});
}

} // namespace bench
} // namespace ibsim
