/**
 * @file
 * Paper Fig. 1: the workflow of a single READ under server-side and
 * client-side ODP, reconstructed from the packet capture (the simulator's
 * ibdump) exactly the way the paper reverse-engineered it on KNL with a
 * minimal RNR NAK delay of 1.28 ms.
 */

#include <cstdio>

#include "capture/trace_format.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

void
runOne(OdpMode mode)
{
    MicroBenchConfig config;
    config.numOps = 1;
    config.numQps = 1;
    config.size = 100;
    config.interval = Time();
    config.odpMode = mode;

    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), /*seed=*/2);
    auto result = bench.run();

    std::printf("---- %s ----\n", odpModeName(mode));
    std::printf("%s",
                capture::formatWorkflow(*bench.packetCapture(),
                                        bench.client().lid())
                    .c_str());
    std::printf("completed=%s latency=%s rnr_naks=%llu rexmits=%llu "
                "discarded(rnr_wait)=%llu\n\n",
                result.completedAll ? "yes" : "no",
                result.executionTime.str().c_str(),
                static_cast<unsigned long long>(result.rnrNaksReceived),
                static_cast<unsigned long long>(result.retransmissions),
                static_cast<unsigned long long>(0));
}

} // namespace

int
main()
{
    std::printf("== Fig. 1: workflow of ODP with a single READ "
                "(min RNR NAK delay 1.28 ms) ==\n\n");
    runOne(OdpMode::ServerSide);
    runOne(OdpMode::ClientSide);
    std::printf("Paper's observations reproduced:\n"
                "  * server-side: RNR NAK, ~4.5 ms wait (3.5 x 1.28 ms), "
                "responses during the wait discarded;\n"
                "  * client-side: response discarded on the local fault, "
                "request blindly retransmitted every ~0.5 ms.\n");
    return 0;
}
