/**
 * @file
 * Paper Fig. 1: the workflow of a single READ under server-side and
 * client-side ODP, reconstructed from the packet capture (the simulator's
 * ibdump) exactly the way the paper reverse-engineered it on KNL with a
 * minimal RNR NAK delay of 1.28 ms.
 *
 * Workflow renderings are inherently sequential stdout; the harness
 * contributes the registry entry and the JSON metric rows.
 */

#include "suite.hh"

#include "capture/trace_format.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace ibsim {
namespace bench {

void
registerFig1(exp::Registry& registry)
{
    registry.add(
        {"fig1", "workflow of ODP with a single READ",
         [](const exp::RunContext& ctx) {
             auto sink = ctx.sink("fig1");
             sink.note("== Fig. 1: workflow of ODP with a single READ "
                       "(min RNR NAK delay 1.28 ms) ==");
             sink.blank();

             exp::Sweep sweep;
             sweep.axis("mode",
                        std::vector<std::string>{
                            odpModeName(OdpMode::ServerSide),
                            odpModeName(OdpMode::ClientSide)});
             const exp::SeedStream seeds("fig1", ctx.userSeed);

             // One captured run per mode, rendered inline; the metrics
             // ride through the runner for uniform JSON rows.
             auto result = ctx.runner("fig1").run(
                 sweep, 1,
                 [&](const exp::Cell& cell, std::uint64_t seed) {
                     const OdpMode mode =
                         cell.valueIndex("mode") == 0
                             ? OdpMode::ServerSide
                             : OdpMode::ClientSide;
                     MicroBenchConfig config;
                     config.numOps = 1;
                     config.numQps = 1;
                     config.size = 100;
                     config.interval = Time();
                     config.odpMode = mode;
                     MicroBenchmark bench(
                         config, rnic::DeviceProfile::knl(), seed);
                     auto r = bench.run();
                     return exp::Metrics{}
                         .set("completed", r.completedAll)
                         .set("latency_s", r.executionTime.toSec())
                         .set("rnr_naks",
                              static_cast<double>(r.rnrNaksReceived))
                         .set("rexmits",
                              static_cast<double>(r.retransmissions));
                 });

             // Re-run the two modes with the *same* seeds for the
             // workflow text (captures are too heavy to thread through
             // Metrics, and two single-READ runs are milliseconds).
             for (const auto& cell : sweep.cells()) {
                 const OdpMode mode = cell.valueIndex("mode") == 0
                                          ? OdpMode::ServerSide
                                          : OdpMode::ClientSide;
                 MicroBenchConfig config;
                 config.numOps = 1;
                 config.numQps = 1;
                 config.size = 100;
                 config.interval = Time();
                 config.odpMode = mode;
                 MicroBenchmark bench(config,
                                      rnic::DeviceProfile::knl(),
                                      seeds.trialSeed(cell.index(), 0));
                 auto r = bench.run();
                 sink.note("---- " + std::string(odpModeName(mode)) +
                           " ----");
                 sink.note(capture::formatWorkflow(
                     *bench.packetCapture(), bench.client().lid()));
                 char line[160];
                 std::snprintf(
                     line, sizeof(line),
                     "completed=%s latency=%s rnr_naks=%llu "
                     "rexmits=%llu",
                     r.completedAll ? "yes" : "no",
                     r.executionTime.str().c_str(),
                     static_cast<unsigned long long>(r.rnrNaksReceived),
                     static_cast<unsigned long long>(
                         r.retransmissions));
                 sink.note(line);
                 sink.blank();
             }

             sink.jsonOnly("fig1", result);
             sink.note(
                 "Paper's observations reproduced:\n"
                 "  * server-side: RNR NAK, ~4.5 ms wait (3.5 x 1.28 "
                 "ms), responses during the wait discarded;\n"
                 "  * client-side: response discarded on the local "
                 "fault, request blindly retransmitted every ~0.5 ms.");
         }});
}

} // namespace bench
} // namespace ibsim
