/**
 * @file
 * Fault-storm / prefetch-sweep bench over the per-page state machine
 * (DESIGN.md section 14).
 *
 * Section 1 storms an ODP responder with invalidation bursts while a
 * client writes through it, comparing the legacy latency-draw model
 * against the MMU-notifier state machine at two storm intensities: how
 * many fault retries / queued faults the notifier windows generate, and
 * what the wall-clock cost of the per-page bookkeeping is (ns_per_item,
 * gated in CI).
 *
 * Section 2 sweeps the prefetch policies (none / fixed-width /
 * sequential-detect) and the huge-page knob on a sequential first-touch
 * scan: faults taken, pages pre-resolved, and simulated scan time.
 */

#include "suite.hh"

#include <chrono>

#include "chaos/chaos_engine.hh"
#include "chaos/invariant_monitor.hh"
#include "cluster/cluster.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

constexpr std::uint64_t bufBytes = 64 * 1024;

struct StormResult
{
    double wallNs = 0;
    std::uint64_t events = 0;
    std::uint64_t faultsResolved = 0;
    std::uint64_t faultRetries = 0;
    std::uint64_t queuedBehindWindow = 0;
    std::uint64_t violations = 0;
    bool completed = false;
};

/** Write traffic through an ODP responder under an invalidation storm. */
StormResult
runFaultStorm(bool machine, std::size_t pages_per_burst,
              std::size_t bursts, std::size_t ops, std::uint64_t seed)
{
    const auto wallStart = std::chrono::steady_clock::now();
    auto profile = rnic::DeviceProfile::connectX4();
    profile.faultTiming.pageStateMachine = machine;
    Cluster cluster(profile, 2, seed);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);
    (void)bqp;

    const auto src = a.alloc(bufBytes);
    const auto dst = b.alloc(bufBytes);
    a.touch(src, bufBytes);
    b.touch(dst, bufBytes);
    auto& amr =
        a.registerMemory(src, bufBytes, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, bufBytes, verbs::AccessFlags::odp());

    chaos::ChaosEngine engine(cluster.events(), [&] {
        chaos::ChaosConfig cfg;
        cfg.seed = seed;
        return cfg;
    }());
    engine.install(cluster.fabric());
    engine.startInvalidationStorm(b.driver(), bmr.table(), dst, bufBytes,
                                  Time::us(100), pages_per_burst, bursts);

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watch(a.rnic(), aqp.context());

    Rng& rng = cluster.rng();
    StormResult out;
    for (std::size_t i = 0; i < ops; ++i) {
        const std::uint64_t off = (i % 16) * mem::pageSize;
        aqp.postWrite(src + off, amr.lkey(), dst + off, bmr.rkey(), 256,
                      i + 1);
        cluster.advance(rng.uniformTime(Time::us(20), Time::us(120)));
    }
    out.completed = cluster.runUntil(
        [&] {
            return aqp.outstanding() == 0 &&
                   acq.totalCompletions() >= ops;
        },
        cluster.now() + Time::sec(600));
    monitor.finalCheck();

    out.wallNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wallStart)
            .count());
    out.events = cluster.events().executed();
    out.faultsResolved = b.driver().stats().faultsResolved;
    out.faultRetries = b.driver().stats().faultRetries;
    out.queuedBehindWindow = b.driver().stats().faultsQueuedBehindWindow;
    out.violations = monitor.violationCount();
    return out;
}

struct ScanResult
{
    std::uint64_t faultsRaised = 0;
    std::uint64_t prefetchedPages = 0;
    std::uint64_t hugePagesMapped = 0;
    double scanMs = 0;
};

/** Sequential first-touch WRITE scan over a cold ODP region. */
ScanResult
runPrefetchScan(const std::string& policy, std::uint64_t width,
                std::size_t pages, std::uint64_t seed)
{
    auto profile = rnic::DeviceProfile::connectX4();
    auto& ft = profile.faultTiming;
    if (policy == "fixed") {
        ft.prefetchPolicy = odp::PrefetchPolicy::FixedWidth;
        ft.prefetchWidth = width;
    } else if (policy == "sequential") {
        ft.prefetchPolicy = odp::PrefetchPolicy::SequentialDetect;
        ft.prefetchWidth = width;
    } else if (policy == "huge") {
        ft.hugePages = true;
        ft.hugePageSpan = width;
    }
    Cluster cluster(profile, 2, seed);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);
    (void)bqp;

    const std::uint64_t area = pages * mem::pageSize;
    const auto src = a.alloc(area);
    const auto dst = b.alloc(area);
    a.touch(src, area);
    auto& amr =
        a.registerMemory(src, area, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, area, verbs::AccessFlags::odp());

    const Time start = cluster.now();
    for (std::size_t p = 0; p < pages; ++p) {
        aqp.postWrite(src + p * mem::pageSize, amr.lkey(),
                      dst + p * mem::pageSize, bmr.rkey(), 256, p + 1);
        cluster.runUntil(
            [&] { return acq.totalCompletions() >= p + 1; },
            cluster.now() + Time::sec(10));
    }

    ScanResult out;
    out.faultsRaised = b.driver().stats().faultsRaised;
    out.prefetchedPages = b.driver().stats().prefetchedPages +
                          b.driver().stats().hugePagesMapped;
    out.hugePagesMapped = b.driver().stats().hugePagesMapped;
    out.scanMs = (cluster.now() - start).toMs();
    return out;
}

} // namespace

void
registerFaultStorm(exp::Registry& registry)
{
    registry.add(
        {"fault_storm",
         "invalidation storms vs the ODP page state machine; prefetch "
         "policy sweep",
         [](const exp::RunContext& ctx) {
             const std::size_t ops = ctx.trials(192, 48);
             const std::size_t bursts = ctx.trials(120, 40);

             exp::Sweep storm;
             storm.axis("model",
                        std::vector<std::string>{"legacy", "machine"})
                 .axis("burst_pages", {1.0, 4.0}, 0);

             auto stormResult = ctx.runner("fault_storm").run(
                 storm, 1,
                 [ops, bursts](const exp::Cell& cell,
                               std::uint64_t seed) {
                     const bool machine = cell.valueIndex("model") == 1;
                     const auto burst = static_cast<std::size_t>(
                         cell.num("burst_pages"));
                     const StormResult r = runFaultStorm(
                         machine, burst, bursts, ops, seed);
                     return exp::Metrics{}
                         .set("ns_per_item",
                              r.wallNs /
                                  static_cast<double>(std::max<
                                                      std::uint64_t>(
                                      1, r.events)))
                         .set("faults_resolved",
                              static_cast<double>(r.faultsResolved))
                         .set("fault_retries",
                              static_cast<double>(r.faultRetries))
                         .set("queued_behind_window",
                              static_cast<double>(r.queuedBehindWindow))
                         .set("violations",
                              static_cast<double>(r.violations))
                         .set("completed", r.completed);
                 });

             auto sink = ctx.sink("fault_storm");
             sink.table(
                 "Invalidation storm vs ODP model (wall clock ns per "
                 "simulated event; " + std::to_string(ops) + " WRITEs)",
                 stormResult,
                 {exp::col("ns_per_item", exp::Stat::Mean, 1, "ns/event"),
                  exp::col("faults_resolved", exp::Stat::Mean, 0,
                           "faults"),
                  exp::col("fault_retries", exp::Stat::Mean, 0,
                           "retries"),
                  exp::col("queued_behind_window", exp::Stat::Mean, 0,
                           "queued"),
                  exp::col("violations", exp::Stat::Mean, 0,
                           "violations")});
             sink.note(
                 "The state machine turns storm interleavings from "
                 "silent unmap races into\nexplicit notifier windows: "
                 "retries and queued faults count the collisions\nthe "
                 "legacy model resolved by luck. ns_per_item bounds the "
                 "bookkeeping cost.");

             const std::size_t scanPages = ctx.trials(96, 32);
             exp::Sweep scan;
             scan.axis("policy",
                       std::vector<std::string>{"none", "fixed",
                                                "sequential", "huge"})
                 .axis("width_pages", {8.0, 32.0}, 0);

             auto scanResult = ctx.runner("fault_storm.prefetch").run(
                 scan, 1,
                 [scanPages](const exp::Cell& cell, std::uint64_t seed) {
                     const auto width = static_cast<std::uint64_t>(
                         cell.num("width_pages"));
                     const ScanResult r = runPrefetchScan(
                         cell.str("policy"), width, scanPages, seed);
                     return exp::Metrics{}
                         .set("faults_raised",
                              static_cast<double>(r.faultsRaised))
                         .set("pages_preresolved",
                              static_cast<double>(r.prefetchedPages))
                         .set("scan_ms", r.scanMs);
                 });

             sink.table(
                 "Prefetch-policy / huge-page sweep: sequential "
                 "first-touch scan of " + std::to_string(scanPages) +
                     " cold ODP pages",
                 scanResult,
                 {exp::col("faults_raised", exp::Stat::Mean, 0,
                           "faults"),
                  exp::col("pages_preresolved", exp::Stat::Mean, 0,
                           "preresolved"),
                  exp::col("scan_ms", exp::Stat::Mean, 2, "scan_ms")});
             sink.note(
                 "Each policy trades faults for speculative work: "
                 "fixed-width and\nsequential-detect cut demand faults "
                 "roughly by the prefetch width, and\nhuge pages "
                 "collapse the scan to one fault per aligned block — "
                 "the knobs\nPsistakis et al. measure for "
                 "virtual-address RDMA fault handling.");
         }});
}

} // namespace bench
} // namespace ibsim
