/**
 * @file
 * Paper Table I: the InfiniBand systems and RNIC details, as modeled.
 *
 * Prints the catalog together with each profile's behavioural parameters
 * (vendor C_ack floor, quirk flags), which is what the rest of the
 * reproduction consumes.
 */

#include <cstdio>

#include "rnic/device_profile.hh"
#include "rnic/timeout.hh"

using namespace ibsim;

int
main()
{
    std::printf("== Table I: InfiniBand systems and RNIC details ==\n\n");
    std::printf("%-22s %-15s %-12s %-14s %-12s %-10s\n", "System name",
                "PSID", "Model", "Link", "Driver", "Firmware");
    for (const auto& p : rnic::DeviceProfile::table1()) {
        char link[32];
        std::snprintf(link, sizeof(link), "%dGbps %s", p.linkGbps,
                      p.linkRate.c_str());
        std::printf("%-22s %-15s %-12s %-14s %-12s %-10s\n",
                    p.systemName.c_str(), p.psid.c_str(),
                    rnic::modelName(p.model), link,
                    p.driverVersion.c_str(), p.firmwareVersion.c_str());
    }

    std::printf("\n== Modeled behavioural parameters ==\n\n");
    std::printf("%-22s %-8s %-14s %-10s %-12s %-12s\n", "System name",
                "c0", "T_o floor", "damming", "RNR mult", "rexmit ivl");
    for (const auto& p : rnic::DeviceProfile::table1()) {
        std::printf("%-22s %-8u %-14s %-10s %-12.1f %-12s\n",
                    p.systemName.c_str(), p.minCack,
                    rnic::detectionTime(1, p).str().c_str(),
                    p.dammingQuirk ? "yes" : "no", p.rnrWaitMultiplier,
                    p.clientRexmitInterval.str().c_str());
    }
    std::printf("\nT_o floor = detection time at the vendor minimum "
                "(paper Fig. 2 lower limits:\n~500 ms for ConnectX-3/4/6, "
                "~30 ms for ConnectX-5).\n");
    return 0;
}
