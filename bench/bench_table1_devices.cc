/**
 * @file
 * Paper Table I: the InfiniBand systems and RNIC details, as modeled.
 *
 * Prints the catalog together with each profile's behavioural parameters
 * (vendor C_ack floor, quirk flags), which is what the rest of the
 * reproduction consumes; the JSON rows carry the modeled parameters.
 */

#include "suite.hh"

#include "rnic/device_profile.hh"
#include "rnic/timeout.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

void
registerTable1(exp::Registry& registry)
{
    registry.add(
        {"table1", "InfiniBand systems and RNIC details (Table I)",
         [](const exp::RunContext& ctx) {
             auto sink = ctx.sink("table1");
             const auto systems = rnic::DeviceProfile::table1();

             sink.note("== Table I: InfiniBand systems and RNIC details "
                       "==");
             sink.blank();
             char line[200];
             std::snprintf(line, sizeof(line),
                           "%-22s %-15s %-12s %-14s %-12s %-10s",
                           "System name", "PSID", "Model", "Link",
                           "Driver", "Firmware");
             sink.note(line);
             for (const auto& p : systems) {
                 char link[32];
                 std::snprintf(link, sizeof(link), "%dGbps %s",
                               p.linkGbps, p.linkRate.c_str());
                 std::snprintf(line, sizeof(line),
                               "%-22s %-15s %-12s %-14s %-12s %-10s",
                               p.systemName.c_str(), p.psid.c_str(),
                               rnic::modelName(p.model), link,
                               p.driverVersion.c_str(),
                               p.firmwareVersion.c_str());
                 sink.note(line);
             }
             sink.blank();
             sink.note("== Modeled behavioural parameters ==");
             sink.blank();
             std::snprintf(line, sizeof(line),
                           "%-22s %-8s %-14s %-10s %-12s %-12s",
                           "System name", "c0", "T_o floor", "damming",
                           "RNR mult", "rexmit ivl");
             sink.note(line);

             std::vector<std::string> names;
             for (const auto& p : systems)
                 names.push_back(p.systemName);
             exp::Sweep sweep;
             sweep.axis("system", names);

             auto result = ctx.runner("table1").run(
                 sweep, 1,
                 [&](const exp::Cell& cell, std::uint64_t) {
                     const auto& p =
                         systems[cell.valueIndex("system")];
                     return exp::Metrics{}
                         .set("min_cack", static_cast<double>(p.minCack))
                         .set("to_floor_ms",
                              rnic::detectionTime(1, p).toMs())
                         .set("damming_quirk", p.dammingQuirk)
                         .set("rnr_wait_mult", p.rnrWaitMultiplier)
                         .set("rexmit_interval_us",
                              p.clientRexmitInterval.toUs());
                 });

             for (const auto& p : systems) {
                 std::snprintf(line, sizeof(line),
                               "%-22s %-8u %-14s %-10s %-12.1f %-12s",
                               p.systemName.c_str(), p.minCack,
                               rnic::detectionTime(1, p).str().c_str(),
                               p.dammingQuirk ? "yes" : "no",
                               p.rnrWaitMultiplier,
                               p.clientRexmitInterval.str().c_str());
                 sink.note(line);
             }
             sink.note("\nT_o floor = detection time at the vendor "
                       "minimum (paper Fig. 2 lower limits:\n~500 ms "
                       "for ConnectX-3/4/6, ~30 ms for ConnectX-5).");
             sink.jsonOnly("table1", result);
         }});
}

} // namespace bench
} // namespace ibsim
