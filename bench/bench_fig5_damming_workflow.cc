/**
 * @file
 * Paper Fig. 5: the packet workflow of packet damming with two READ
 * operations, in server-side and client-side ODP, reconstructed from the
 * capture. The second READ's exchange disappears and only the ~500 ms
 * transport timeout recovers it.
 */

#include "suite.hh"

#include "capture/trace_format.hh"
#include "pitfall/detectors.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace ibsim {
namespace bench {

void
registerFig5(exp::Registry& registry)
{
    registry.add(
        {"fig5", "workflow of packet damming with two READs",
         [](const exp::RunContext& ctx) {
             auto sink = ctx.sink("fig5");
             sink.note("== Fig. 5: workflow of ODP with two READ "
                       "operations (packet damming) ==");
             sink.blank();

             const exp::SeedStream seeds("fig5", ctx.userSeed);
             const struct
             {
                 OdpMode mode;
                 Time interval;
             } cases[] = {{OdpMode::ServerSide, Time::ms(1)},
                          {OdpMode::ClientSide, Time::us(300)}};

             exp::Sweep sweep;
             sweep.axis("mode",
                        std::vector<std::string>{
                            odpModeName(cases[0].mode),
                            odpModeName(cases[1].mode)});

             auto result = ctx.runner("fig5").run(
                 sweep, 1,
                 [&](const exp::Cell& cell, std::uint64_t seed) {
                     const auto& c = cases[cell.valueIndex("mode")];
                     MicroBenchConfig config;
                     config.numOps = 2;
                     config.interval = c.interval;
                     config.odpMode = c.mode;
                     config.capture = false;
                     MicroBenchmark bench(
                         config, rnic::DeviceProfile::knl(), seed);
                     auto r = bench.run();
                     return exp::Metrics{}
                         .set("exec_s", r.executionTime.toSec())
                         .set("timeouts",
                              static_cast<double>(r.timeouts));
                 });

             // The rendered workflows, from identically-seeded runs.
             for (const auto& cell : sweep.cells()) {
                 const auto& c = cases[cell.valueIndex("mode")];
                 MicroBenchConfig config;
                 config.numOps = 2;
                 config.interval = c.interval;
                 config.odpMode = c.mode;
                 MicroBenchmark bench(config,
                                      rnic::DeviceProfile::knl(),
                                      seeds.trialSeed(cell.index(), 0));
                 auto r = bench.run();
                 sink.note("---- " + std::string(odpModeName(c.mode)) +
                           " (interval " + c.interval.str() + ") ----");
                 sink.note(capture::formatWorkflow(
                     *bench.packetCapture(), bench.client().lid()));
                 sink.note("execution=" + r.executionTime.str() +
                           " timeouts=" + std::to_string(r.timeouts));
                 sink.note(formatReport(
                     detectDamming(*bench.packetCapture())));
                 sink.blank();
             }

             sink.jsonOnly("fig5", result);
         }});
}

} // namespace bench
} // namespace ibsim
