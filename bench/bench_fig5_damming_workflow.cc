/**
 * @file
 * Paper Fig. 5: the packet workflow of packet damming with two READ
 * operations, in server-side and client-side ODP, reconstructed from the
 * capture. The second READ's exchange disappears and only the ~500 ms
 * transport timeout recovers it.
 */

#include <cstdio>

#include "capture/trace_format.hh"
#include "pitfall/detectors.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

void
runOne(OdpMode mode, Time interval)
{
    MicroBenchConfig config;
    config.numOps = 2;
    config.interval = interval;
    config.odpMode = mode;

    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), /*seed=*/2);
    auto result = bench.run();

    std::printf("---- %s (interval %s) ----\n", odpModeName(mode),
                interval.str().c_str());
    std::printf("%s",
                capture::formatWorkflow(*bench.packetCapture(),
                                        bench.client().lid())
                    .c_str());
    std::printf("execution=%s timeouts=%llu\n",
                result.executionTime.str().c_str(),
                static_cast<unsigned long long>(result.timeouts));
    std::printf("%s\n",
                formatReport(detectDamming(*bench.packetCapture()))
                    .c_str());
}

} // namespace

int
main()
{
    std::printf("== Fig. 5: workflow of ODP with two READ operations "
                "(packet damming) ==\n\n");
    runOne(OdpMode::ServerSide, Time::ms(1));
    runOne(OdpMode::ClientSide, Time::us(300));
    return 0;
}
