/**
 * @file
 * Flood-scale capacity of the simulator datapath itself.
 *
 * The paper's packet-flood pitfall (Sec. V) only shows its teeth at
 * scale — hundreds of QPs blindly retransmitting — and ROADMAP's north
 * star is running such scenarios "as fast as the hardware allows". This
 * bench drives the client-side-ODP flood through thousands of QPs spread
 * over many nodes and reports *wall-clock* ns per simulated packet: the
 * end-to-end cost of the per-packet wire path (fabric routing tables,
 * RNIC steering, trace gating, event kernel). Like simcore_micro it is
 * the one kind of bench whose numbers legitimately vary across machines;
 * the simulated packet counts per cell are seed-deterministic.
 *
 * The `oracle` axis additionally audits the run with the chaos invariant
 * monitor attached mid-run via InvariantMonitor::watchAll() — the
 * late-attach path that lets long-running services be checked without
 * restarting them. Its cells must stay at violations = 0.
 */

#include "suite.hh"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "chaos/invariant_monitor.hh"
#include "cluster/cluster.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

using Clock = std::chrono::steady_clock;

struct CapacityResult
{
    std::uint64_t packets = 0;
    double wallNs = 0;
    std::uint64_t violations = 0;
    bool completed = false;
    std::uint64_t traceHash = 0;
    /** Island-mode observability (zero in single-queue runs). */
    std::uint64_t barriers = 0;
    std::uint64_t channelParcels = 0;
    std::uint64_t islandEventsMax = 0;
    std::uint64_t islandEventsMin = 0;
};

/**
 * One capacity trial: `qps` QPs split over `pairs` client/server node
 * pairs, every QP issuing 100-B READs into its own client-side-ODP page
 * (each response DMA faults, provoking the flood machinery). Two posting
 * waves; with `audit` the invariant monitor late-attaches between them,
 * so wave 1 is pre-attach history and wave 2 is fully checked.
 *
 * `jobs` = 0 runs the historical single-queue kernel; >= 1 runs island
 * mode (one island per node) with that many workers — jobs = 1 being the
 * windowed algorithm inline, the "sequential" reference every jobs > 1
 * run must match bit-for-bit.
 */
CapacityResult
runCapacityTrial(std::size_t qps, std::size_t pairs,
                 std::size_t ops_per_wave, bool audit, std::uint64_t seed,
                 unsigned jobs = 0)
{
    const std::size_t qpsPerPair = qps / pairs;
    constexpr std::uint64_t bytesPerQp = 4096;  // one ODP page per QP

    ClusterOptions options;
    options.sharded = jobs > 0;
    options.jobs = jobs > 0 ? jobs : 1;
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2 * pairs, seed,
                    net::LinkConfig{}, options);
    struct Pair
    {
        Node* client;
        verbs::CompletionQueue* cq;
        std::uint64_t src, dst;
        std::uint32_t lkey, rkey;
    };
    std::vector<Pair> setup(pairs);
    std::vector<verbs::QueuePair> flows;
    flows.reserve(qps);

    for (std::size_t p = 0; p < pairs; ++p) {
        Node& client = cluster.node(2 * p);
        Node& server = cluster.node(2 * p + 1);
        auto& ccq = client.createCq();
        auto& scq = server.createCq();
        const std::uint64_t bytes = qpsPerPair * bytesPerQp;
        const std::uint64_t src = server.alloc(bytes);
        const std::uint64_t dst = client.alloc(bytes);
        auto& smr = server.registerMemory(src, bytes,
                                          verbs::AccessFlags::pinned());
        auto& cmr = client.registerMemory(dst, bytes,
                                          verbs::AccessFlags::odp());
        setup[p] = {&client, &ccq, src, dst, cmr.lkey(), smr.rkey()};
        for (std::size_t q = 0; q < qpsPerPair; ++q) {
            auto [cqp, sqp] = cluster.connectRc(
                client, ccq, server, scq,
                pitfall::MicroBenchConfig::ucxDefaultConfig());
            flows.push_back(cqp);
        }
    }

    const auto postWave = [&](std::size_t wave) {
        for (std::size_t i = 0; i < flows.size(); ++i) {
            const Pair& pr = setup[i / qpsPerPair];
            const std::size_t q = i % qpsPerPair;
            for (std::size_t op = 0; op < ops_per_wave; ++op) {
                const std::uint64_t off = q * bytesPerQp +
                                          (wave * ops_per_wave + op) * 128;
                flows[i].postRead(pr.dst + off, pr.lkey, pr.src + off,
                                  pr.rkey, 100,
                                  wave * ops_per_wave + op + 1);
            }
        }
    };
    std::vector<verbs::CompletionQueue*> cqs;
    for (const Pair& pr : setup)
        cqs.push_back(pr.cq);
    const auto completions = [&] {
        std::uint64_t done = 0;
        for (auto* cq : cqs)
            done += cq->totalCompletions();
        return done;
    };
    const std::uint64_t perWave = qps * ops_per_wave;

    // The monitor's egress tap hashes every packet from construction on,
    // so only audit cells instantiate it — oracle=off measures the bare
    // datapath.
    std::unique_ptr<chaos::InvariantMonitor> monitor;

    const auto start = Clock::now();
    postWave(0);
    cluster.runUntil([&] { return completions() >= perWave; },
                     Time::sec(600));
    if (audit) {
        monitor = std::make_unique<chaos::InvariantMonitor>(
            cluster.fabric());
        monitor->watchAll(cluster);  // late attach, traffic already flowed
    }
    postWave(1);
    CapacityResult result;
    result.completed = cluster.runUntil(
        [&] { return completions() >= 2 * perWave; }, Time::sec(600));
    const auto stop = Clock::now();

    if (monitor)
        monitor->finalCheck();
    result.packets = cluster.fabric().totalSent();
    result.wallNs =
        static_cast<double>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(stop - start)
                                .count());
    result.violations = monitor ? monitor->violationCount() : 0;
    result.traceHash = monitor ? monitor->traceHash() : 0;
    if (ShardedKernel* kernel = cluster.shardedKernel()) {
        const auto ks = kernel->kernelStats();
        result.barriers = ks.barriers;
        result.channelParcels = ks.channelParcels;
        result.islandEventsMax = ks.maxIslandExecuted;
        result.islandEventsMin = ks.minIslandExecuted;
    }
    return result;
}

} // namespace

void
registerFloodCapacity(exp::Registry& registry)
{
    registry.add(
        {"flood_capacity",
         "wall-clock datapath capacity at flood scale (4096 QPs)",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(3, 1);
             const std::size_t opsPerWave = 2;
             constexpr std::size_t pairs = 4;

             // Like simcore_micro, this bench always leaves a
             // machine-readable record for CI trend tracking.
             exp::RunContext local = ctx;
             if (local.jsonPath.empty() &&
                 std::getenv("IBSIM_JSON") == nullptr) {
                 local.jsonPath = "BENCH_simcore.json";
             }

             exp::Sweep sweep;
             sweep.axis("qps", {1024.0, 4096.0}, 0)
                 .axis("oracle", std::vector<std::string>{"off", "late"});

             auto result = local.runner("flood_capacity").run(
                 sweep, trials,
                 [opsPerWave](const exp::Cell& cell, std::uint64_t seed) {
                     const auto qps =
                         static_cast<std::size_t>(cell.num("qps"));
                     const bool audit = cell.valueIndex("oracle") == 1;
                     const CapacityResult r = runCapacityTrial(
                         qps, pairs, opsPerWave, audit, seed);
                     const double perPkt =
                         r.packets > 0
                             ? r.wallNs / static_cast<double>(r.packets)
                             : 0.0;
                     return exp::Metrics{}
                         .set("ns_per_packet", perPkt)
                         .set("packets_per_s",
                              perPkt > 0 ? 1e9 / perPkt : 0.0)
                         .set("packets_k",
                              static_cast<double>(r.packets) / 1e3)
                         .set("violations",
                              static_cast<double>(r.violations))
                         .set("completed", r.completed ? 1.0 : 0.0);
                 });

             auto sink = local.sink("flood_capacity");
             sink.table(
                 "Flood-scale datapath capacity (wall clock; numbers "
                 "vary by machine)",
                 result,
                 {exp::col("ns_per_packet", exp::Stat::Mean, 1,
                           "ns/pkt"),
                  exp::col("packets_per_s", exp::Stat::Mean, 0,
                           "pkts/s"),
                  exp::col("packets_k", exp::Stat::Mean, 1, "packets_k"),
                  exp::col("violations", exp::Stat::Mean, 0,
                           "violations"),
                  exp::col("completed", exp::Stat::Mean, 2,
                           "completed")});
             sink.note(
                 "Client-side-ODP flood over many nodes: the wall-clock "
                 "cost of the per-packet\nwire path at production scale. "
                 "oracle=late cells audit the run with\n"
                 "InvariantMonitor::watchAll() attached mid-run (late "
                 "attach) and must stay at\nviolations = 0.");

             // Island-mode scaling: the same flood on a 64-node mesh
             // under the sharded kernel, workers swept 1..8. jobs = 1 is
             // the inline windowed reference; check_bench_regression.py
             // derives speedup_vs_seq from these rows.
             constexpr std::size_t parallelPairs = 32;
             exp::Sweep parallel;
             parallel.axis("nodes", {2.0 * parallelPairs}, 0)
                 .axis("qps", {16384.0}, 0)
                 .axis("jobs", {1.0, 2.0, 4.0, 8.0}, 0);

             auto presult = local.runner("flood_capacity_parallel")
                                .run(parallel, trials,
                                     [opsPerWave](const exp::Cell& cell,
                                                  std::uint64_t seed) {
                     const auto qps =
                         static_cast<std::size_t>(cell.num("qps"));
                     const auto jobs =
                         static_cast<unsigned>(cell.num("jobs"));
                     const CapacityResult r = runCapacityTrial(
                         qps, parallelPairs, opsPerWave, false, seed,
                         jobs);
                     const double perPkt =
                         r.packets > 0
                             ? r.wallNs / static_cast<double>(r.packets)
                             : 0.0;
                     const double imbalance =
                         r.islandEventsMin > 0
                             ? static_cast<double>(r.islandEventsMax) /
                                   static_cast<double>(r.islandEventsMin)
                             : 0.0;
                     return exp::Metrics{}
                         .set("ns_per_packet", perPkt)
                         .set("packets_per_s",
                              perPkt > 0 ? 1e9 / perPkt : 0.0)
                         .set("packets_k",
                              static_cast<double>(r.packets) / 1e3)
                         .set("completed", r.completed ? 1.0 : 0.0)
                         .set("barriers",
                              static_cast<double>(r.barriers))
                         .set("channel_pkts",
                              static_cast<double>(r.channelParcels))
                         .set("island_events_max",
                              static_cast<double>(r.islandEventsMax))
                         .set("island_events_min",
                              static_cast<double>(r.islandEventsMin))
                         .set("imbalance", imbalance);
                 });

             auto psink = local.sink("flood_capacity_parallel");
             psink.table(
                 "Island-mode scaling on a 64-node mesh (sharded "
                 "kernel; wall clock)",
                 presult,
                 {exp::col("ns_per_packet", exp::Stat::Mean, 1,
                           "ns/pkt"),
                  exp::col("packets_k", exp::Stat::Mean, 1, "packets_k"),
                  exp::col("barriers", exp::Stat::Mean, 0, "barriers"),
                  exp::col("channel_pkts", exp::Stat::Mean, 0,
                           "chan_pkts"),
                  exp::col("imbalance", exp::Stat::Mean, 2, "imbalance"),
                  exp::col("completed", exp::Stat::Mean, 2,
                           "completed")});
             psink.note(
                 "One island per node, conservative lookahead = link "
                 "latency + per-packet overhead.\njobs=1 runs the "
                 "windowed algorithm inline (the sequential reference); "
                 "every jobs>1 run\nis bit-identical to it. Speedup "
                 "needs real cores: single-CPU machines will show\n"
                 "jobs>1 slower, and the regression gate reports "
                 "speedup_vs_seq from these rows.");
         }});
}

} // namespace bench
} // namespace ibsim
