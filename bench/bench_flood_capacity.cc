/**
 * @file
 * Flood-scale capacity of the simulator datapath itself.
 *
 * The paper's packet-flood pitfall (Sec. V) only shows its teeth at
 * scale — hundreds of QPs blindly retransmitting — and ROADMAP's north
 * star is running such scenarios "as fast as the hardware allows". This
 * bench drives the client-side-ODP flood through thousands of QPs spread
 * over many nodes and reports *wall-clock* ns per simulated packet: the
 * end-to-end cost of the per-packet wire path (fabric routing tables,
 * RNIC steering, trace gating, event kernel). Like simcore_micro it is
 * the one kind of bench whose numbers legitimately vary across machines;
 * the simulated packet counts per cell are seed-deterministic.
 *
 * The `oracle` axis additionally audits the run with the chaos invariant
 * monitor attached mid-run via InvariantMonitor::watchAll() — the
 * late-attach path that lets long-running services be checked without
 * restarting them. Its cells must stay at violations = 0.
 */

#include "suite.hh"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "chaos/invariant_monitor.hh"
#include "cluster/cluster.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;

namespace ibsim {
namespace bench {

namespace {

using Clock = std::chrono::steady_clock;

struct CapacityResult
{
    std::uint64_t packets = 0;
    double wallNs = 0;
    std::uint64_t violations = 0;
    bool completed = false;
    std::uint64_t traceHash = 0;
    /** Island-mode observability (zero in single-queue runs). */
    std::uint64_t barriers = 0;
    std::uint64_t channelParcels = 0;
    std::uint64_t islandEventsMax = 0;
    std::uint64_t islandEventsMin = 0;
    std::uint64_t steals = 0;
    std::uint64_t maxClockLagNs = 0;
    double busyMean = 0;
    double busyMin = 0;
    std::uint64_t triggerExits = 0;
    std::uint64_t drainAborts = 0;
    std::uint64_t roundsSkipped = 0;
    std::uint64_t readyDepth = 0;
};

/**
 * One capacity trial: `qps` QPs split over `pairs` client/server node
 * pairs, every QP issuing 100-B READs into its own client-side-ODP page
 * (each response DMA faults, provoking the flood machinery). Two posting
 * waves; with `audit` the invariant monitor late-attaches between them,
 * so wave 1 is pre-attach history and wave 2 is fully checked.
 *
 * `jobs` = 0 runs the historical single-queue kernel; >= 1 runs island
 * mode (one island per node) with that many workers — jobs = 1 being the
 * windowed algorithm inline, the "sequential" reference every jobs > 1
 * run must match bit-for-bit. `client_planes` > 1 splits every client
 * machine into that many planes (Cluster::addNodePlanes) and spreads its
 * QP groups round-robin across them — the per-QP-group island split that
 * stops one hot RNIC from serializing a whole window.
 */
CapacityResult
runCapacityTrial(std::size_t qps, std::size_t pairs,
                 std::size_t ops_per_wave, bool audit, std::uint64_t seed,
                 unsigned jobs = 0,
                 ScheduleMode mode = ScheduleMode::Stealing,
                 unsigned client_planes = 1)
{
    const std::size_t qpsPerPair = qps / pairs;
    constexpr std::uint64_t bytesPerQp = 4096;  // one ODP page per QP

    ClusterOptions options;
    options.sharded = jobs > 0;
    options.jobs = jobs > 0 ? jobs : 1;
    options.scheduleMode = mode;
    Cluster cluster(rnic::DeviceProfile::connectX4(), 0, seed,
                    net::LinkConfig{}, options);
    struct PlaneRegion
    {
        std::uint64_t dst = 0;
        std::uint32_t lkey = 0;
    };
    struct Pair
    {
        std::vector<Node*> planes;
        std::vector<PlaneRegion> dsts;
        std::uint64_t src = 0;
        std::uint32_t rkey = 0;
    };
    std::vector<Pair> setup(pairs);
    std::vector<verbs::QueuePair> flows;
    flows.reserve(qps);

    const auto profile = rnic::DeviceProfile::connectX4();
    for (std::size_t p = 0; p < pairs; ++p) {
        Pair& pr = setup[p];
        // With client_planes == 1 this is the historical layout: nodes
        // alternate client, server, client, server (LIDs 1..2*pairs).
        pr.planes = cluster.addNodePlanes(profile, client_planes);
        Node& server = cluster.addNode(profile);
        auto& scq = server.createCq();
        const std::uint64_t bytes = qpsPerPair * bytesPerQp;
        pr.src = server.alloc(bytes);
        auto& smr = server.registerMemory(pr.src, bytes,
                                          verbs::AccessFlags::pinned());
        pr.rkey = smr.rkey();
        std::vector<verbs::CompletionQueue*> pcqs;
        for (Node* plane : pr.planes) {
            auto& ccq = plane->createCq();
            pcqs.push_back(&ccq);
            const std::uint64_t dst = plane->alloc(bytes);
            auto& cmr = plane->registerMemory(
                dst, bytes, verbs::AccessFlags::odp());
            pr.dsts.push_back({dst, cmr.lkey()});
        }
        for (std::size_t q = 0; q < qpsPerPair; ++q) {
            const std::size_t plane = q % pr.planes.size();
            auto [cqp, sqp] = cluster.connectRc(
                *pr.planes[plane], *pcqs[plane], server, scq,
                pitfall::MicroBenchConfig::ucxDefaultConfig());
            flows.push_back(cqp);
        }
    }

    const auto postWave = [&](std::size_t wave) {
        for (std::size_t i = 0; i < flows.size(); ++i) {
            const Pair& pr = setup[i / qpsPerPair];
            const std::size_t q = i % qpsPerPair;
            const PlaneRegion& dst = pr.dsts[q % pr.dsts.size()];
            for (std::size_t op = 0; op < ops_per_wave; ++op) {
                const std::uint64_t off = q * bytesPerQp +
                                          (wave * ops_per_wave + op) * 128;
                flows[i].postRead(dst.dst + off, dst.lkey, pr.src + off,
                                  pr.rkey, 100,
                                  wave * ops_per_wave + op + 1);
            }
        }
    };
    const std::uint64_t perWave = qps * ops_per_wave;

    // The monitor's egress tap hashes every packet from construction on,
    // so only audit cells instantiate it — oracle=off measures the bare
    // datapath.
    std::unique_ptr<chaos::InvariantMonitor> monitor;

    // Trigger-based waits: only clients post, so server CQs stay at
    // zero and the cluster-wide count equals the client-CQ sum. Island
    // cells exit through the kernel's per-island completion triggers
    // (no per-quiesce CQ re-poll); single-queue cells poll as before.
    const auto start = Clock::now();
    postWave(0);
    cluster.runUntilCompletions(perWave, Time::sec(600));
    if (audit) {
        monitor = std::make_unique<chaos::InvariantMonitor>(
            cluster.fabric());
        monitor->watchAll(cluster);  // late attach, traffic already flowed
    }
    postWave(1);
    CapacityResult result;
    result.completed =
        cluster.runUntilCompletions(2 * perWave, Time::sec(600));
    const auto stop = Clock::now();

    if (monitor)
        monitor->finalCheck();
    result.packets = cluster.fabric().totalSent();
    result.wallNs =
        static_cast<double>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(stop - start)
                                .count());
    result.violations = monitor ? monitor->violationCount() : 0;
    result.traceHash = monitor ? monitor->traceHash() : 0;
    if (ShardedKernel* kernel = cluster.shardedKernel()) {
        const auto ks = kernel->kernelStats();
        result.barriers = ks.barriers;
        result.channelParcels = ks.channelParcels;
        result.islandEventsMax = ks.maxIslandExecuted;
        result.islandEventsMin = ks.minIslandExecuted;
        result.steals = ks.steals;
        result.maxClockLagNs = ks.maxClockLagNs;
        result.triggerExits = ks.triggerExits;
        result.drainAborts = ks.drainAborts;
        result.roundsSkipped = ks.roundsSkipped;
        result.readyDepth = ks.maxReadyQueueDepth;
        if (!ks.workerBusyFraction.empty()) {
            double sum = 0, mn = ks.workerBusyFraction.front();
            for (const double f : ks.workerBusyFraction) {
                sum += f;
                mn = f < mn ? f : mn;
            }
            result.busyMean =
                sum / static_cast<double>(ks.workerBusyFraction.size());
            result.busyMin = mn;
        }
    }
    return result;
}

/**
 * Axis override from the environment: a comma-separated list of numbers
 * (e.g. IBSIM_FLOOD_JOBS=1,4) replaces @p fallback. Lets CI's perf-smoke
 * and users sweep a subset without recompiling.
 */
std::vector<double>
axisFromEnv(const char* name, std::vector<double> fallback)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return fallback;
    std::vector<double> out;
    char* cursor = nullptr;
    for (double v = std::strtod(raw, &cursor); cursor != raw;
         v = std::strtod(raw, &cursor)) {
        out.push_back(v);
        raw = *cursor == ',' ? cursor + 1 : cursor;
    }
    return out.empty() ? fallback : out;
}

} // namespace

void
registerFloodCapacity(exp::Registry& registry)
{
    registry.add(
        {"flood_capacity",
         "wall-clock datapath capacity at flood scale (4096 QPs)",
         [](const exp::RunContext& ctx) {
             const std::size_t trials = ctx.trials(3, 1);
             const std::size_t opsPerWave = 2;
             constexpr std::size_t pairs = 4;

             // Like simcore_micro, this bench always leaves a
             // machine-readable record for CI trend tracking.
             exp::RunContext local = ctx;
             if (local.jsonPath.empty() &&
                 std::getenv("IBSIM_JSON") == nullptr) {
                 local.jsonPath = "BENCH_simcore.json";
             }

             exp::Sweep sweep;
             sweep.axis("qps", {1024.0, 4096.0}, 0)
                 .axis("oracle", std::vector<std::string>{"off", "late"});

             auto result = local.runner("flood_capacity").run(
                 sweep, trials,
                 [opsPerWave](const exp::Cell& cell, std::uint64_t seed) {
                     const auto qps =
                         static_cast<std::size_t>(cell.num("qps"));
                     const bool audit = cell.valueIndex("oracle") == 1;
                     const CapacityResult r = runCapacityTrial(
                         qps, pairs, opsPerWave, audit, seed);
                     const double perPkt =
                         r.packets > 0
                             ? r.wallNs / static_cast<double>(r.packets)
                             : 0.0;
                     return exp::Metrics{}
                         .set("ns_per_packet", perPkt)
                         .set("packets_per_s",
                              perPkt > 0 ? 1e9 / perPkt : 0.0)
                         .set("packets_k",
                              static_cast<double>(r.packets) / 1e3)
                         .set("violations",
                              static_cast<double>(r.violations))
                         .set("completed", r.completed ? 1.0 : 0.0);
                 });

             auto sink = local.sink("flood_capacity");
             sink.table(
                 "Flood-scale datapath capacity (wall clock; numbers "
                 "vary by machine)",
                 result,
                 {exp::col("ns_per_packet", exp::Stat::Mean, 1,
                           "ns/pkt"),
                  exp::col("packets_per_s", exp::Stat::Mean, 0,
                           "pkts/s"),
                  exp::col("packets_k", exp::Stat::Mean, 1, "packets_k"),
                  exp::col("violations", exp::Stat::Mean, 0,
                           "violations"),
                  exp::col("completed", exp::Stat::Mean, 2,
                           "completed")});
             sink.note(
                 "Client-side-ODP flood over many nodes: the wall-clock "
                 "cost of the per-packet\nwire path at production scale. "
                 "oracle=late cells audit the run with\n"
                 "InvariantMonitor::watchAll() attached mid-run (late "
                 "attach) and must stay at\nviolations = 0.");

             // Island-mode scaling: the same flood on a 64-machine mesh
             // under the sharded kernel, workers swept 1..8. jobs = 1 is
             // the inline windowed reference; check_bench_regression.py
             // derives speedup_vs_seq from these rows and fails loudly
             // when it dips below 1.0. planes = 4 splits every client
             // machine into four per-QP-group islands (same 64 machines,
             // more schedulable islands).
             constexpr std::size_t parallelPairs = 32;
             exp::Sweep parallel;
             parallel.axis("nodes", {2.0 * parallelPairs}, 0)
                 .axis("qps", {16384.0}, 0)
                 .axis("planes",
                       axisFromEnv("IBSIM_FLOOD_PLANES", {1.0, 4.0}), 0)
                 .axis("jobs",
                       axisFromEnv("IBSIM_FLOOD_JOBS",
                                   {1.0, 2.0, 4.0, 8.0}),
                       0);

             auto presult = local.runner("flood_capacity_parallel")
                                .run(parallel, trials,
                                     [opsPerWave](const exp::Cell& cell,
                                                  std::uint64_t seed) {
                     const auto qps =
                         static_cast<std::size_t>(cell.num("qps"));
                     const auto jobs =
                         static_cast<unsigned>(cell.num("jobs"));
                     const auto planes =
                         static_cast<unsigned>(cell.num("planes"));
                     const CapacityResult r = runCapacityTrial(
                         qps, parallelPairs, opsPerWave, false, seed,
                         jobs, ScheduleMode::Stealing, planes);
                     const double perPkt =
                         r.packets > 0
                             ? r.wallNs / static_cast<double>(r.packets)
                             : 0.0;
                     const double imbalance =
                         r.islandEventsMin > 0
                             ? static_cast<double>(r.islandEventsMax) /
                                   static_cast<double>(r.islandEventsMin)
                             : 0.0;
                     return exp::Metrics{}
                         .set("ns_per_packet", perPkt)
                         .set("packets_per_s",
                              perPkt > 0 ? 1e9 / perPkt : 0.0)
                         .set("packets_k",
                              static_cast<double>(r.packets) / 1e3)
                         .set("completed", r.completed ? 1.0 : 0.0)
                         .set("barriers",
                              static_cast<double>(r.barriers))
                         .set("channel_pkts",
                              static_cast<double>(r.channelParcels))
                         .set("island_events_max",
                              static_cast<double>(r.islandEventsMax))
                         .set("island_events_min",
                              static_cast<double>(r.islandEventsMin))
                         .set("imbalance", imbalance)
                         .set("steals", static_cast<double>(r.steals))
                         .set("max_clock_lag_ns",
                              static_cast<double>(r.maxClockLagNs))
                         .set("busy_mean", r.busyMean)
                         .set("busy_min", r.busyMin)
                         .set("trigger_exits",
                              static_cast<double>(r.triggerExits))
                         .set("drain_aborts",
                              static_cast<double>(r.drainAborts))
                         .set("rounds_skipped",
                              static_cast<double>(r.roundsSkipped))
                         .set("ready_depth",
                              static_cast<double>(r.readyDepth));
                 });

             auto psink = local.sink("flood_capacity_parallel");
             psink.table(
                 "Island-mode scaling on a 64-machine mesh (sharded "
                 "kernel; wall clock)",
                 presult,
                 {exp::col("ns_per_packet", exp::Stat::Mean, 1,
                           "ns/pkt"),
                  exp::col("packets_k", exp::Stat::Mean, 1, "packets_k"),
                  exp::col("barriers", exp::Stat::Mean, 0, "rounds"),
                  exp::col("channel_pkts", exp::Stat::Mean, 0,
                           "chan_pkts"),
                  exp::col("imbalance", exp::Stat::Mean, 2, "imbalance"),
                  exp::col("steals", exp::Stat::Mean, 0, "steals"),
                  exp::col("trigger_exits", exp::Stat::Mean, 0,
                           "trig_exit"),
                  exp::col("ready_depth", exp::Stat::Mean, 0,
                           "ready_q"),
                  exp::col("max_clock_lag_ns", exp::Stat::Mean, 0,
                           "lag_ns"),
                  exp::col("busy_mean", exp::Stat::Mean, 2, "busy_mean"),
                  exp::col("busy_min", exp::Stat::Mean, 2, "busy_min"),
                  exp::col("completed", exp::Stat::Mean, 2,
                           "completed")});
             psink.note(
                 "One island per node plus per-QP-group client planes "
                 "(planes=4 splits each client\nmachine into 4 islands); "
                 "pairwise channel clocks, work-stealing scheduler.\n"
                 "jobs=1 runs the windowed algorithm inline (the "
                 "sequential reference); every jobs>1\nrun is "
                 "bit-identical to it. Waves wait via per-island "
                 "completion triggers\n(runUntilCompletions): trig_exit "
                 "counts runs that stopped inside a worker pass.\n"
                 "steals / lag_ns / busy_* / ready_q / drain_aborts are "
                 "wall-clock scheduler\nobservability, not part of the "
                 "deterministic surface.");
         }});
}

} // namespace bench
} // namespace ibsim
