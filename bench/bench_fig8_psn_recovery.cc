/**
 * @file
 * Paper Fig. 8: workflow of ODP with three READ operations.
 *
 * The second READ is dammed, but the third arrives after the pending
 * window, so the responder NAKs it with a PSN sequence error and the
 * requester retransmits the second and third immediately — recovery
 * without the transport timeout.
 */

#include <cstdio>

#include "capture/trace_format.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

int
main()
{
    MicroBenchConfig config;
    config.numOps = 3;
    config.interval = Time::ms(2.5);
    config.odpMode = OdpMode::BothSide;

    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), /*seed=*/11);
    auto result = bench.run();

    std::printf("== Fig. 8: workflow with three READs "
                "(PSN sequence error recovery) ==\n\n");
    std::printf("%s",
                capture::formatWorkflow(*bench.packetCapture(),
                                        bench.client().lid())
                    .c_str());
    std::printf("\nexecution=%s timeouts=%llu seq_naks=%llu\n",
                result.executionTime.str().c_str(),
                static_cast<unsigned long long>(result.timeouts),
                static_cast<unsigned long long>(result.seqNaksReceived));
    std::printf("Paper: the NAK (PSN sequence error) triggers immediate "
                "retransmission of the 2nd and 3rd READs; no timeout.\n");
    return 0;
}
