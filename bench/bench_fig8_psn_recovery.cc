/**
 * @file
 * Paper Fig. 8: workflow of ODP with three READ operations.
 *
 * The second READ is dammed, but the third arrives after the pending
 * window, so the responder NAKs it with a PSN sequence error and the
 * requester retransmits the second and third immediately — recovery
 * without the transport timeout.
 */

#include "suite.hh"

#include "capture/trace_format.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace ibsim {
namespace bench {

void
registerFig8(exp::Registry& registry)
{
    registry.add(
        {"fig8", "workflow with three READs (PSN sequence recovery)",
         [](const exp::RunContext& ctx) {
             auto sink = ctx.sink("fig8");

             // The paper's rendering needs one seed whose jitter places
             // the third READ outside the pending window; the historical
             // seed 11 does, so the stream is offset to keep it.
             const exp::SeedStream seeds("fig8", ctx.userSeed);

             MicroBenchConfig config;
             config.numOps = 3;
             config.interval = Time::ms(2.5);
             config.odpMode = OdpMode::BothSide;

             MicroBenchmark bench(config, rnic::DeviceProfile::knl(),
                                  ctx.userSeed == 0
                                      ? 11
                                      : seeds.trialSeed(0, 0));
             auto r = bench.run();

             sink.note("== Fig. 8: workflow with three READs "
                       "(PSN sequence error recovery) ==");
             sink.blank();
             sink.note(capture::formatWorkflow(*bench.packetCapture(),
                                               bench.client().lid()));
             sink.note("execution=" + r.executionTime.str() +
                       " timeouts=" + std::to_string(r.timeouts) +
                       " seq_naks=" +
                       std::to_string(r.seqNaksReceived));
             sink.note("Paper: the NAK (PSN sequence error) triggers "
                       "immediate retransmission of the 2nd and 3rd "
                       "READs; no timeout.");

             // JSON row of the headline metrics.
             exp::Sweep sweep;
             sweep.axis("ops", {3.0}, 0);
             exp::SweepResult result;
             result.axisNames = {"ops"};
             result.trialsPerCell = 1;
             exp::CellStats stats(
                 0, {{"ops", exp::AxisValue::number(3.0, 0)}});
             stats.accumulate(
                 exp::Metrics{}
                     .set("exec_s", r.executionTime.toSec())
                     .set("timeouts", static_cast<double>(r.timeouts))
                     .set("seq_naks",
                          static_cast<double>(r.seqNaksReceived)));
             result.cells.push_back(std::move(stats));
             sink.jsonOnly("fig8", result);
         }});
}

} // namespace bench
} // namespace ibsim
