/**
 * @file
 * Pitfall hunt: run the paper's micro-benchmark in a risky configuration,
 * then use the pitfall toolkit the way a practitioner would — detectors
 * over the packet capture, followed by a workaround A/B check.
 *
 * This is the programmatic version of the paper's Sec. IX lesson: the
 * pitfalls produce no error completions, so only the wire tells the truth.
 *
 * Run: ./build/examples/pitfall_hunt
 */

#include <cstdio>

#include "pitfall/detectors.hh"
#include "pitfall/microbench.hh"
#include "pitfall/workarounds.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

MicroBenchResult
runCase(const char* label, MicroBenchConfig config)
{
    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), /*seed=*/9);
    auto result = bench.run();

    std::printf("---- %s ----\n", label);
    std::printf("execution: %s, completions ok: %s, error CQEs: %s\n",
                result.executionTime.str().c_str(),
                result.completedAll ? "all" : "MISSING",
                result.qpError ? "yes" : "none");

    // Nothing in the completion stream points at a problem -- scan the
    // capture instead.
    auto damming = detectDamming(*bench.packetCapture());
    auto flood = detectFlood(*bench.packetCapture(),
                             FloodDetectorConfig{/*min rexmits=*/4});
    std::printf("%s", formatReport(damming).c_str());
    std::printf("%s\n", formatReport(flood).c_str());
    return result;
}

} // namespace

int
main()
{
    std::printf("== Hunting the two ODP pitfalls with the toolkit ==\n\n");

    // Case 1: two READs, 1 ms apart, both sides on-demand. Smells fine;
    // takes half a second.
    MicroBenchConfig damming_case;
    damming_case.numOps = 2;
    damming_case.interval = Time::ms(1);
    damming_case.odpMode = OdpMode::BothSide;
    runCase("2 READs @ 1 ms, both-side ODP (packet damming)",
            damming_case);

    // Case 2: one READ per QP across 128 QPs into one fresh page.
    MicroBenchConfig flood_case;
    flood_case.numOps = 128;
    flood_case.numQps = 128;
    flood_case.size = 32;
    flood_case.interval = Time::us(8);
    flood_case.odpMode = OdpMode::ClientSide;
    flood_case.qpConfig = MicroBenchConfig::ucxDefaultConfig();
    runCase("128 QPs x 1 READ, client-side ODP (packet flood)",
            flood_case);

    // Workaround A/B: the smallest RNR NAK delay narrows the damming
    // window below our 1 ms posting interval.
    std::printf("== Applying workaround: minimal RNR NAK delay ==\n\n");
    MicroBenchConfig fixed = damming_case;
    fixed.qpConfig = withMinimalRnrDelay(fixed.qpConfig);
    auto result = runCase("2 READs @ 1 ms, min RNR delay 0.01 ms", fixed);
    std::printf("verdict: %s\n",
                result.timedOut() ? "still dammed"
                                  : "damming avoided (fast run)");
    return 0;
}
