/**
 * @file
 * DSM startup scenario: the ArgoDSM-like initialization protocol from the
 * paper's Sec. VII-A, with and without ODP, showing how an innocuous
 * global-lock READ + SEND sequence turns into a half-second stall when
 * packet damming strikes.
 *
 * Run: ./build/examples/dsm_startup
 */

#include <cstdio>

#include "apps/mini_dsm.hh"
#include "simcore/stats.hh"

using namespace ibsim;
using namespace ibsim::apps;

int
main()
{
    const auto system = DsmSystemParams::knl();
    std::printf("== MiniDsm (ArgoDSM-like) init+finalize on %s ==\n\n",
                system.name.c_str());

    for (bool odp : {false, true}) {
        DsmConfig config;
        config.memoryBytes = 10ull << 20;  // argo::init(10 MB)
        config.odp = odp;
        MiniDsm dsm(system, config);

        Accumulator exec;
        std::size_t slow_group = 0;
        const std::size_t trials = 12;
        for (std::size_t t = 1; t <= trials; ++t) {
            auto r = dsm.run(t);
            if (!r.completed) {
                std::printf("trial %zu did not complete!\n", t);
                continue;
            }
            exec.add(r.executionTime.toSec());
            const bool dammed = r.timeouts > 0;
            if (dammed)
                ++slow_group;
            std::printf("  trial %2zu: %7.2f s  faults=%3llu  rnr=%2llu  "
                        "%s\n",
                        t, r.executionTime.toSec(),
                        static_cast<unsigned long long>(r.faultsResolved),
                        static_cast<unsigned long long>(r.rnrNaks),
                        dammed ? "<- transport timeout (packet damming)"
                               : "");
        }
        std::printf("%s ODP: avg %.2f s (min %.2f, max %.2f), "
                    "%zu/%zu trials hit the timeout\n\n",
                    odp ? "with" : "without", exec.mean(), exec.min(),
                    exec.max(), slow_group, trials);
    }

    std::printf("The with-ODP distribution is bimodal (paper Fig. 12): "
                "the slow group carries one\n~2.1 s transport timeout "
                "(UCX default C_ack = 18) from the dammed lock-release "
                "SEND.\n");
    return 0;
}
