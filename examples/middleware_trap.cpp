/**
 * @file
 * The middleware trap: the paper's Sec. IX-A story, end to end.
 *
 * An application uses a UCX-like messaging layer and never mentions ODP —
 * but the middleware "prioritizes ODP over direct memory registration by
 * default". A lock protocol (one-sided get of the lock word, then an
 * eager release message) intermittently stalls for two seconds with no
 * error anywhere. The fix is one configuration flag — once you know to
 * look.
 *
 * Run: ./build/examples/middleware_trap
 */

#include <cstdio>

#include "ucxlite/ucx_lite.hh"

using namespace ibsim;
using namespace ibsim::ucxlite;

namespace {

/** One lock round: get the remote lock word, then send the release. */
double
lockRound(Cluster& cluster, UcxWorker& local, UcxWorker& home,
          UcxEndpoint& ep, const RemoteMemory& lock_word,
          std::uint64_t scratch, std::uint64_t msg, Time gap)
{
    const auto rr = home.tagRecv(/*tag=*/1, scratch + 2048, 2048);
    const Time start = cluster.now();
    const auto get_req = ep.get(scratch, lock_word, 8);
    cluster.advance(gap);  // compute between the get and the release
    const auto send_req = ep.tagSend(1, msg, 64);
    cluster.runUntil(
        [&] {
            return local.completed(get_req) && local.completed(send_req) &&
                   home.completed(rr);
        },
        cluster.now() + Time::sec(30));
    return (cluster.now() - start).toSec();
}

void
runConfig(bool use_odp)
{
    Cluster cluster(rnic::DeviceProfile::knl(), 2, /*seed=*/19);
    UcxConfig config;
    config.useOdp = use_odp;
    UcxWorker home(cluster, cluster.node(0), config);
    UcxWorker worker(cluster, cluster.node(1), config);
    auto& ep = worker.connectTo(home);

    const auto msg = cluster.node(1).alloc(4096);
    const auto scratch = cluster.node(1).alloc(4096);
    cluster.node(1).memory().write(msg,
                                   std::vector<std::uint8_t>(64, 0x42));

    std::printf("middleware memory mode: %s\n",
                use_odp ? "ODP (the default)" : "pinned registration");
    for (int round = 0; round < 6; ++round) {
        // A fresh lock page each round (first touch, as in DSM startup).
        const auto lock_page = cluster.node(0).alloc(4096);
        cluster.node(0).memory().write(
            lock_page, std::vector<std::uint8_t>(8, 0));
        const RemoteMemory lock_word =
            home.expose(lock_page, 4096);

        const Time gap = cluster.rng().uniformTime(Time::ms(0.3),
                                                   Time::ms(7.0));
        const double secs = lockRound(cluster, worker, home, ep,
                                      lock_word, scratch, msg, gap);
        std::printf("  lock round %d: %8.4f s%s\n", round, secs,
                    secs > 1.0 ? "   <-- stalled (and no error anywhere)"
                               : "");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("== The Sec. IX-A middleware trap: same application, two "
                "middleware configs ==\n\n");
    runConfig(/*use_odp=*/true);
    runConfig(/*use_odp=*/false);
    std::printf(
        "With ODP on, rounds whose compute gap lands inside the lock "
        "get's fault pending\nperiod lose the release message to packet "
        "damming: a ~2.1 s transport timeout,\nzero error completions, "
        "nothing in the logs. The paper's authors took months to\ntrace "
        "this through the software stack -- the pitfall_hunt example "
        "shows the\ncapture-based detectors that shortcut that hunt.\n");
    return 0;
}
