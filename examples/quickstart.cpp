/**
 * @file
 * Quickstart: build a two-node cluster, move data with the three verb
 * types, then watch a single ODP page fault happen on the wire.
 *
 * Run: ./build/examples/quickstart
 */

#include <cstdio>

#include "capture/trace_format.hh"
#include "cluster/cluster.hh"

using namespace ibsim;

int
main()
{
    // A cluster of two ConnectX-4 machines on one fabric. Every random
    // element (fault latencies, jitter) derives from the seed.
    Cluster cluster(rnic::DeviceProfile::connectX4(), /*node_count=*/2,
                    /*seed=*/42);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);

    // Attach the simulator's ibdump.
    capture::PacketCapture capture(cluster.fabric());

    // Completion queues and one Reliable Connection QP pair.
    auto& client_cq = client.createCq();
    auto& server_cq = server.createCq();
    verbs::QpConfig config;
    config.cack = 14;                       // Local ACK Timeout exponent
    config.minRnrNakDelay = Time::ms(1.28);  // responder RNR advertisement
    auto [cqp, sqp] = cluster.connectRc(client, client_cq, server,
                                        server_cq, config);

    // Conventional (pinned) memory registration on both sides.
    const std::uint64_t src = server.alloc(4096);
    const std::uint64_t dst = client.alloc(4096);
    auto& smr = server.registerMemory(src, 4096,
                                      verbs::AccessFlags::pinned());
    auto& cmr = client.registerMemory(dst, 4096,
                                      verbs::AccessFlags::pinned());

    // 1. RDMA READ: pull 256 bytes from the server.
    server.memory().write(src, std::vector<std::uint8_t>(256, 0x5A));
    cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 256, /*wr_id=*/1);
    cluster.runUntil([&] { return client_cq.totalCompletions() == 1; });
    std::printf("READ completed in %s (data ok: %s)\n",
                cluster.now().str().c_str(),
                client.memory().read(dst, 256)[100] == 0x5A ? "yes"
                                                            : "no");

    // 2. RDMA WRITE: push data the other way.
    client.memory().write(dst, std::vector<std::uint8_t>(128, 0x7B));
    cqp.postWrite(dst, cmr.lkey(), src, smr.rkey(), 128, /*wr_id=*/2);
    cluster.runUntil([&] { return client_cq.totalCompletions() == 2; });

    // 3. SEND/RECV: two-sided messaging.
    sqp.postRecv(src + 1024, smr.lkey(), 1024, /*wr_id=*/3);
    cqp.postSend(dst, cmr.lkey(), 64, /*wr_id=*/4);
    cluster.runUntil([&] { return server_cq.totalCompletions() == 1; });
    std::printf("WRITE + SEND/RECV done at %s\n",
                cluster.now().str().c_str());

    // 4. Now the interesting part: an On-Demand Paging region. The first
    //    READ against it faults in the RNIC; watch the RNR NAK dance.
    capture.clear();
    const std::uint64_t odp_src = server.alloc(4096);
    auto& odp_mr = server.registerMemory(odp_src, 4096,
                                         verbs::AccessFlags::odp());
    cqp.postRead(dst, cmr.lkey(), odp_src, odp_mr.rkey(), 100,
                 /*wr_id=*/5);
    cluster.runUntil([&] { return client_cq.totalCompletions() == 4; });

    std::printf("\nFirst READ against an ODP region "
                "(server-side network page fault):\n\n%s\n",
                capture::formatWorkflow(capture, client.lid()).c_str());
    std::printf("Page faults resolved by the server driver: %llu\n",
                static_cast<unsigned long long>(
                    server.driver().stats().faultsResolved));
    return 0;
}
