/**
 * @file
 * Reliable messaging two ways: hardware (RC) vs software (UC + retry
 * timer), under packet loss — the design point from the paper's related
 * work (Sec. VIII-C) that explains why the vendor-floored RC timeout makes
 * packet damming so expensive, and why tunable software timeouts are the
 * first family of workarounds.
 *
 * Run: ./build/examples/reliable_messaging
 */

#include <cstdio>

#include "cluster/cluster.hh"
#include "net/loss.hh"
#include "swrel/soft_reliable.hh"

using namespace ibsim;

int
main()
{
    constexpr double lossRate = 0.02;
    constexpr int messages = 100;

    std::printf("== 100 synchronous 64-B messages at %.0f%% packet loss "
                "==\n\n", lossRate * 100);

    // --- Hardware reliability: RC with the vendor-floored timeout.
    {
        Cluster cluster(rnic::DeviceProfile::knl(), 2, 7);
        Node& a = cluster.node(0);
        Node& b = cluster.node(1);
        auto& acq = a.createCq();
        auto& bcq = b.createCq();
        verbs::QpConfig config;
        config.cack = 1;  // requests 8 us; the CX4 floor gives ~537 ms
        auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq, config);

        const auto src = a.alloc(4096);
        const auto dst = b.alloc(4096);
        a.touch(src, 4096);
        auto& amr = a.registerMemory(src, 4096,
                                     verbs::AccessFlags::pinned());
        auto& bmr = b.registerMemory(dst, 4096,
                                     verbs::AccessFlags::pinned());
        cluster.fabric().setLossModel(
            std::make_unique<net::BernoulliLoss>(lossRate));

        const Time start = cluster.now();
        for (int i = 0; i < messages; ++i) {
            aqp.postWrite(src, amr.lkey(), dst, bmr.rkey(), 64, i);
            cluster.runUntil(
                [&] { return acq.totalCompletions() >= i + 1u; },
                cluster.now() + Time::sec(30));
        }
        std::printf("RC (hardware retransmission, C_ack floor 537 ms):\n"
                    "  total %.3f s, %llu transport timeouts\n\n",
                    (cluster.now() - start).toSec(),
                    static_cast<unsigned long long>(
                        aqp.stats().timeouts));
    }

    // --- Software reliability: UC + 1 ms application retry timer.
    {
        Cluster cluster(rnic::DeviceProfile::knl(), 2, 7);
        swrel::SoftChannelConfig config;
        config.retryTimeout = Time::ms(1);
        swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                           cluster.node(1), config);
        cluster.fabric().setLossModel(
            std::make_unique<net::BernoulliLoss>(lossRate));

        const Time start = cluster.now();
        for (int i = 0; i < messages; ++i) {
            const auto seq =
                channel.send(std::vector<std::uint8_t>(64, 0x55));
            cluster.runUntil([&] { return channel.acked(seq); },
                             cluster.now() + Time::sec(30));
        }
        std::printf("UC + software retry (1 ms timer):\n"
                    "  total %.3f s, %llu app-level retransmissions, "
                    "%llu delivered\n\n",
                    (cluster.now() - start).toSec(),
                    static_cast<unsigned long long>(
                        channel.stats().retransmissions),
                    static_cast<unsigned long long>(
                        channel.stats().delivered));
    }

    std::printf("Same loss, three orders of magnitude apart: the RC "
                "timeout cannot be tuned below\nthe vendor minimum "
                "(paper Sec. II-C), while the software timer can follow "
                "the\nactual round-trip time.\n");
    return 0;
}
