/**
 * @file
 * Shuffle acceleration scenario: a SparkUCX-like job fetching shuffle
 * blocks over many QPs, comparing pinned registration against ODP — the
 * paper's Sec. VII-B experiment in miniature, including the "stuck for a
 * few seconds" flood stalls.
 *
 * Run: ./build/examples/shuffle_odp
 */

#include <cstdio>

#include "apps/mini_shuffle.hh"

using namespace ibsim;
using namespace ibsim::apps;

int
main()
{
    // A custom job: 512 connections, 24 fetch waves, modest compute.
    ShuffleRow job;
    job.system = "example cluster";
    job.example = "block-shuffle";
    job.profile = rnic::DeviceProfile::connectX4();
    job.qps = 512;
    job.waveQps = 128;
    job.waves = 24;
    job.computeTotal = Time::sec(3.0);

    std::printf("== MiniShuffle: %zu QPs, %zu waves of %zu fetches ==\n\n",
                job.qps, job.waves, job.waveQps);

    for (bool odp : {false, true}) {
        MiniShuffle shuffle(job, odp);
        auto r = shuffle.run(/*seed=*/7);
        if (!r.completed) {
            std::printf("%s: did not complete\n", odp ? "ODP" : "pinned");
            continue;
        }
        std::printf("%-7s exec=%7.2f s  longest wave stall=%8.2f ms  "
                    "rexmits=%-8llu update failures=%llu\n",
                    odp ? "ODP" : "pinned", r.executionTime.toSec(),
                    r.longestWave.toMs(),
                    static_cast<unsigned long long>(r.retransmissions),
                    static_cast<unsigned long long>(r.updateFailures));
    }

    std::printf("\nWith ODP every wave's fresh fetch buffers fault "
                "simultaneously from %zu QPs --\nwell past the ~10-QP "
                "status-update fanout -- so waves stall on the packet "
                "flood\nwhile the fetched pages sit resolved but "
                "unacknowledged (paper Sec. VI).\n",
                job.waveQps);
    return 0;
}
